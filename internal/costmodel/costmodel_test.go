package costmodel

import (
	"testing"
	"time"
)

func TestDefaultsSane(t *testing.T) {
	m := Default(1.0)
	if m.TimeScale != 1.0 {
		t.Errorf("TimeScale = %f", m.TimeScale)
	}
	if m.PeerCores < 1 || m.ClientCores < 1 || m.ValidatorPool < 1 {
		t.Error("core counts must be positive")
	}
	if m.OrderTimeout != 3*time.Second {
		t.Errorf("OrderTimeout = %s, paper uses 3s", m.OrderTimeout)
	}
	if Default(0).TimeScale != 1 {
		t.Error("non-positive scale not defaulted")
	}
}

// The calibration targets from DESIGN.md section 4 are structural
// properties of the model; this test pins them so a constant change
// that breaks the reproduction fails loudly.
func TestCalibrationTargets(t *testing.T) {
	m := Default(1.0)

	// Client capacity: ~50-60 tps per process under OR (1 endorsement).
	clientTPS := float64(time.Second) / float64(m.ClientTxCost(1))
	if clientTPS < 45 || clientTPS > 62 {
		t.Errorf("client capacity = %.1f tps, want ~55 (Table II slope)", clientTPS)
	}

	// Validate-phase capacity per tx = serial + parallel/pool.
	perTx := func(sigs int) time.Duration {
		return m.SerialCommitCost() +
			m.BlockCommitCPU/100 + // amortized over a full block
			m.VSCCCost(sigs)/time.Duration(m.ValidatorPool)
	}
	orTPS := float64(time.Second) / float64(perTx(1))
	andTPS := float64(time.Second) / float64(perTx(5))
	if orTPS < 280 || orTPS > 340 {
		t.Errorf("OR validate cap = %.0f tps, want ~310 (paper ~300)", orTPS)
	}
	if andTPS < 180 || andTPS > 230 {
		t.Errorf("AND5 validate cap = %.0f tps, want ~206 (paper ~210)", andTPS)
	}

	// AND must cap below OR: the paper's central bottleneck finding.
	if andTPS >= orTPS {
		t.Error("AND5 validate capacity not below OR")
	}

	// The orderer must never be the bottleneck (paper's finding 2).
	orderTPS := float64(time.Second) / float64(m.OrderPerTxCPU) * float64(m.OrdererCores)
	if orderTPS < 2*orTPS {
		t.Errorf("orderer capacity %.0f tps is too close to validate cap %.0f", orderTPS, orTPS)
	}
}

func TestScaling(t *testing.T) {
	m := Default(0.1)
	if got := m.ScaledDelay(time.Second); got != 100*time.Millisecond {
		t.Errorf("ScaledDelay = %s", got)
	}
	if got := m.UnscaledDuration(100 * time.Millisecond); got != time.Second {
		t.Errorf("UnscaledDuration = %s", got)
	}
	if got := m.ScaledRate(30); got != 300 {
		t.Errorf("ScaledRate = %f", got)
	}
}

func TestCostHelpers(t *testing.T) {
	m := Default(1.0)
	if m.ClientTxCost(5) <= m.ClientTxCost(1) {
		t.Error("client cost does not grow with endorsements")
	}
	if m.VSCCCost(5) <= m.VSCCCost(1) {
		t.Error("VSCC cost does not grow with signatures")
	}
	if m.EndorseCost(1<<20) <= m.EndorseCost(1) {
		t.Error("endorse cost does not grow with value size")
	}
}

// TestChaincodeCostComposition pins the EndorseCost = verify-checks +
// chaincode-execution split: the container charges ChaincodeCost
// directly, so no caller ever reconstructs it by subtraction (which
// could silently go negative after a recalibration).
func TestChaincodeCostComposition(t *testing.T) {
	m := Default(1.0)
	for _, bytes := range []int{0, 1, 1 << 20} {
		if got, want := m.EndorseCost(bytes), m.EndorseVerifyCPU+m.ChaincodeCost(bytes); got != want {
			t.Errorf("EndorseCost(%d) = %s, want verify+chaincode = %s", bytes, got, want)
		}
		if m.ChaincodeCost(bytes) <= 0 {
			t.Errorf("ChaincodeCost(%d) = %s, not positive", bytes, m.ChaincodeCost(bytes))
		}
	}
	// Even a pathological recalibration cannot push the container's
	// charge negative: ChaincodeCost never depends on EndorseVerifyCPU.
	m.EndorseVerifyCPU = time.Hour
	if m.ChaincodeCost(1) <= 0 {
		t.Errorf("ChaincodeCost went non-positive after recalibration: %s", m.ChaincodeCost(1))
	}
}
