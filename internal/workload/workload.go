// Package workload implements the open-loop transaction generator the
// paper's experiments drive Fabric with: a target arrival rate split
// across the client processes (Fig. 1's per-peer load fractions), with
// transactions invoked asynchronously — new transactions are issued
// without waiting for the responses of previous ones (Section IV-A,
// design principle 3).
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fabricsim/internal/client"
	"fabricsim/internal/costmodel"
)

// Arrival selects the inter-arrival process.
type Arrival uint8

// Arrival processes.
const (
	// Uniform spaces arrivals evenly at 1/rate.
	Uniform Arrival = iota + 1
	// Poisson draws exponential inter-arrival times.
	Poisson
)

// Config parameterizes one load run.
type Config struct {
	// Rate is the aggregate arrival rate in transactions per second of
	// model time.
	Rate float64
	// Duration is the run length in model time.
	Duration time.Duration
	// Arrival is the inter-arrival process (default Uniform).
	Arrival Arrival
	// TxSize is the value size written per transaction (the paper's
	// transaction-size parameter, default 1 byte).
	TxSize int
	// Model supplies the time scale.
	Model costmodel.Model
	// Chaincode and Fn name the invocation (defaults: "bench"/"write").
	Chaincode string
	Fn        string
	// KeySpace is the number of distinct keys written (default: one
	// fresh key per tx, i.e. no write contention, matching the paper's
	// system-level workload).
	KeySpace int
	// Seed makes Poisson arrivals and key choice reproducible.
	Seed int64
	// MaxInFlight caps outstanding transactions per client to bound
	// memory at extreme overload (0 = 4096).
	MaxInFlight int
	// Channels, when non-empty, sprays transactions round-robin across
	// the named channels (the paper's channel-scaling axis); empty uses
	// each client's default channel.
	Channels []string
}

// Stats summarizes a finished run.
type Stats struct {
	Submitted int64
	Succeeded int64
	Failed    int64
	// Skipped counts arrivals dropped because the in-flight cap was
	// reached (severe overload only).
	Skipped int64
}

// Run drives the clients at the configured rate and blocks until all
// in-flight transactions resolve (commit, rejection, or timeout).
func Run(ctx context.Context, clients []*client.Client, cfg Config) (Stats, error) {
	if len(clients) == 0 {
		return Stats{}, fmt.Errorf("workload: no clients")
	}
	if cfg.Rate <= 0 {
		return Stats{}, fmt.Errorf("workload: non-positive rate %f", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return Stats{}, fmt.Errorf("workload: non-positive duration %s", cfg.Duration)
	}
	if cfg.Chaincode == "" {
		cfg.Chaincode = "bench"
	}
	if cfg.Fn == "" {
		cfg.Fn = "write"
	}
	if cfg.TxSize < 1 {
		cfg.TxSize = 1
	}
	if cfg.Arrival == 0 {
		cfg.Arrival = Uniform
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}

	var stats Stats
	var wg sync.WaitGroup
	perClientRate := cfg.Rate / float64(len(clients))
	wallDuration := cfg.Model.ScaledDelay(cfg.Duration)

	value := make([]byte, cfg.TxSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	var txSeq atomic.Int64
	for ci, cl := range clients {
		ci, cl := ci, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919 + 1))
			meanGap := time.Duration(float64(time.Second) / perClientRate)
			wallGap := cfg.Model.ScaledDelay(meanGap)
			inFlight := make(chan struct{}, cfg.MaxInFlight)
			var cwg sync.WaitGroup

			end := time.Now().Add(wallDuration)
			next := time.Now()
			for time.Now().Before(end) {
				if ctx.Err() != nil {
					break
				}
				// Open loop: sleep to the next arrival, then fire
				// without waiting for the previous response.
				gap := wallGap
				if cfg.Arrival == Poisson {
					gap = time.Duration(rng.ExpFloat64() * float64(wallGap))
				}
				next = next.Add(gap)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				select {
				case inFlight <- struct{}{}:
				default:
					atomic.AddInt64(&stats.Skipped, 1)
					continue
				}
				seq := txSeq.Add(1)
				key := fmt.Sprintf("k%d", seq)
				if cfg.KeySpace > 0 {
					key = fmt.Sprintf("k%d", rng.Intn(cfg.KeySpace))
				}
				atomic.AddInt64(&stats.Submitted, 1)
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					defer func() { <-inFlight }()
					args := [][]byte{[]byte(key), value}
					var err error
					if len(cfg.Channels) > 0 {
						channel := cfg.Channels[int(seq)%len(cfg.Channels)]
						_, err = cl.InvokeOnChannel(ctx, channel, cfg.Chaincode, cfg.Fn, args)
					} else {
						_, err = cl.Invoke(ctx, cfg.Chaincode, cfg.Fn, args)
					}
					if err != nil {
						atomic.AddInt64(&stats.Failed, 1)
						return
					}
					atomic.AddInt64(&stats.Succeeded, 1)
				}()
			}
			cwg.Wait()
		}()
	}
	wg.Wait()
	return stats, ctx.Err()
}
