// Package workload drives transaction load through the gateway's
// asynchronous submission API in two shapes:
//
//   - OpenLoop reproduces the paper's experiment driver: a target
//     arrival rate split across the client processes (Fig. 1's per-peer
//     load fractions), with new transactions issued without waiting for
//     the responses of previous ones (Section IV-A, design principle 3).
//     Arrivals that find the in-flight window full are dropped, so the
//     generator's rate is never coupled to the network's service rate.
//
//   - Pipeline is the windowed closed loop the Gateway API enables: each
//     client keeps exactly W transactions in flight and submits the next
//     the moment one resolves. W=1 is the legacy blocking SDK life cycle
//     (one thread, one transaction); growing W measures how much
//     throughput the staged API recovers from the same client process.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fabricsim/internal/client"
	"fabricsim/internal/costmodel"
	"fabricsim/internal/gateway"
)

// Arrival selects the inter-arrival process of the open loop.
type Arrival uint8

// Arrival processes.
const (
	// Uniform spaces arrivals evenly at 1/rate.
	Uniform Arrival = iota + 1
	// Poisson draws exponential inter-arrival times.
	Poisson
)

// Mode selects how load is generated.
type Mode uint8

// Load-generation modes.
const (
	// OpenLoop issues arrivals at Config.Rate regardless of completions.
	OpenLoop Mode = iota + 1
	// Pipeline keeps Config.Window transactions in flight per client.
	Pipeline
)

// Config parameterizes one load run.
type Config struct {
	// Mode selects open-loop (rate-driven) or pipeline (window-driven)
	// generation (default OpenLoop).
	Mode Mode
	// Rate is the aggregate arrival rate in transactions per second of
	// model time (OpenLoop only).
	Rate float64
	// Window is the per-client in-flight window (Pipeline only,
	// default 1 — the legacy blocking SDK loop).
	Window int
	// Duration is the run length in model time.
	Duration time.Duration
	// Arrival is the inter-arrival process (OpenLoop, default Uniform).
	Arrival Arrival
	// TxSize is the value size written per transaction (the paper's
	// transaction-size parameter, default 1 byte).
	TxSize int
	// Model supplies the time scale.
	Model costmodel.Model
	// Chaincode and Fn name the invocation (defaults: "bench"/"write").
	Chaincode string
	Fn        string
	// KeySpace is the number of distinct keys written (default: one
	// fresh key per tx, i.e. no write contention, matching the paper's
	// system-level workload).
	KeySpace int
	// ZipfS skews key popularity within KeySpace with a Zipfian
	// distribution of parameter s (must be > 1 when set; rank-0 keys are
	// the hottest). Zero keeps the uniform key choice. Larger s
	// concentrates more of the load on fewer keys — the contention axis
	// of the conflict-aware ordering experiments.
	ZipfS float64
	// Profile selects a canned multi-op workload instead of the single
	// Chaincode/Fn invocation. Supported: ProfileSmallBank, which drives
	// the SmallBank chaincode's read-modify-write mix over KeySpace
	// accounts (default 1000), with per-account popularity skewed by
	// ZipfS.
	Profile string
	// Seed makes Poisson arrivals and key choice reproducible.
	Seed int64
	// MaxInFlight caps outstanding transactions per client in OpenLoop
	// mode to bound memory at extreme overload
	// (0 = gateway.DefaultMaxInFlight).
	MaxInFlight int
	// Channels, when non-empty, sprays transactions round-robin across
	// the named channels (the paper's channel-scaling axis); empty uses
	// each client's default channel.
	Channels []string
}

func (c *Config) applyDefaults() error {
	if c.Mode == 0 {
		c.Mode = OpenLoop
	}
	switch c.Mode {
	case OpenLoop:
		if c.Rate <= 0 {
			return fmt.Errorf("workload: non-positive rate %f", c.Rate)
		}
	case Pipeline:
		if c.Window < 1 {
			c.Window = 1
		}
	default:
		return fmt.Errorf("workload: unknown mode %d", c.Mode)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: non-positive duration %s", c.Duration)
	}
	switch c.Profile {
	case "":
	case ProfileSmallBank:
		if c.Chaincode == "" {
			c.Chaincode = "smallbank"
		}
		if c.KeySpace <= 0 {
			c.KeySpace = 1000
		}
	default:
		return fmt.Errorf("workload: unknown profile %q", c.Profile)
	}
	if c.Chaincode == "" {
		c.Chaincode = "bench"
	}
	if c.Fn == "" {
		c.Fn = "write"
	}
	if c.ZipfS != 0 {
		if c.ZipfS <= 1 {
			return fmt.Errorf("workload: ZipfS must be > 1, got %f", c.ZipfS)
		}
		if c.KeySpace < 2 {
			return fmt.Errorf("workload: ZipfS needs KeySpace >= 2, got %d", c.KeySpace)
		}
	}
	if c.TxSize < 1 {
		c.TxSize = 1
	}
	if c.Arrival == 0 {
		c.Arrival = Uniform
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = gateway.DefaultMaxInFlight
	}
	return nil
}

// Stats summarizes a finished run.
type Stats struct {
	Submitted int64
	Succeeded int64
	Failed    int64
	// Skipped counts open-loop arrivals dropped because the in-flight
	// window was full (severe overload only).
	Skipped int64
}

// runState is the shared bookkeeping of one load run. Counters are
// atomic.Int64 (not Stats directly) so their 64-bit alignment is
// guaranteed on 32-bit platforms too.
type runState struct {
	cfg   Config
	txSeq atomic.Int64
	value []byte

	submitted atomic.Int64
	succeeded atomic.Int64
	failed    atomic.Int64
	skipped   atomic.Int64
}

// snapshot reduces the counters into the exported Stats shape.
func (st *runState) snapshot() Stats {
	return Stats{
		Submitted: st.submitted.Load(),
		Succeeded: st.succeeded.Load(),
		Failed:    st.failed.Load(),
		Skipped:   st.skipped.Load(),
	}
}

// Run drives the clients' gateways in the configured mode and blocks
// until all in-flight transactions resolve (commit, rejection, or
// timeout).
func Run(ctx context.Context, clients []*client.Client, cfg Config) (Stats, error) {
	if len(clients) == 0 {
		return Stats{}, fmt.Errorf("workload: no clients")
	}
	if err := cfg.applyDefaults(); err != nil {
		return Stats{}, err
	}

	st := &runState{cfg: cfg, value: make([]byte, cfg.TxSize)}
	for i := range st.value {
		st.value[i] = byte('a' + i%26)
	}

	var wg sync.WaitGroup
	for ci, cl := range clients {
		ci, gw := ci, cl.Gateway()
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch cfg.Mode {
			case Pipeline:
				st.runPipelineClient(ctx, gw, ci)
			default:
				st.runOpenLoopClient(ctx, gw, ci, len(clients))
			}
		}()
	}
	wg.Wait()
	return st.snapshot(), ctx.Err()
}

// ProfileSmallBank names the SmallBank mixed-operation workload profile.
const ProfileSmallBank = "smallbank"

// txgen is one client's transaction generator: a seeded rng plus the
// optional Zipfian popularity skew over the key space.
type txgen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
}

// newGen builds client ci's generator with the run's deterministic
// per-client seed.
func (st *runState) newGen(ci int) *txgen {
	rng := rand.New(rand.NewSource(st.cfg.Seed + int64(ci)*7919 + 1))
	g := &txgen{rng: rng}
	if st.cfg.ZipfS > 1 && st.cfg.KeySpace > 1 {
		g.zipf = rand.NewZipf(rng, st.cfg.ZipfS, 1, uint64(st.cfg.KeySpace-1))
	}
	return g
}

// pick draws one key index from [0, keySpace): Zipf-skewed when
// configured (index 0 hottest), uniform otherwise.
func (g *txgen) pick(keySpace int) int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(keySpace)
}

// nextCall picks the next transaction's channel, function, and
// arguments.
func (st *runState) nextCall(g *txgen) (channel, fn string, args [][]byte) {
	seq := st.txSeq.Add(1)
	if len(st.cfg.Channels) > 0 {
		channel = st.cfg.Channels[int(seq)%len(st.cfg.Channels)]
	}
	if st.cfg.Profile == ProfileSmallBank {
		fn, args = st.nextSmallBank(g)
		return channel, fn, args
	}
	key := fmt.Sprintf("k%d", seq)
	if st.cfg.KeySpace > 0 {
		key = fmt.Sprintf("k%d", g.pick(st.cfg.KeySpace))
	}
	return channel, st.cfg.Fn, [][]byte{[]byte(key), st.value}
}

// nextSmallBank draws one operation from the SmallBank mix: 15%
// deposit, 15% transact (savings), 25% send-payment, 15% write-check,
// 15% amalgamate, 15% balance query — the write-heavy RMW mix of the
// original suite. Account popularity follows the generator's key
// distribution.
func (st *runState) nextSmallBank(g *txgen) (string, [][]byte) {
	acct := []byte(fmt.Sprintf("a%d", g.pick(st.cfg.KeySpace)))
	switch r := g.rng.Intn(100); {
	case r < 15:
		return "deposit", [][]byte{acct, []byte("10")}
	case r < 30:
		return "transact", [][]byte{acct, []byte("10")}
	case r < 55:
		to := []byte(fmt.Sprintf("a%d", g.pick(st.cfg.KeySpace)))
		return "sendpayment", [][]byte{acct, to, []byte("5")}
	case r < 70:
		return "writecheck", [][]byte{acct, []byte("5")}
	case r < 85:
		to := []byte(fmt.Sprintf("a%d", g.pick(st.cfg.KeySpace)))
		return "amalgamate", [][]byte{acct, to}
	default:
		return "query", [][]byte{acct}
	}
}

// await counts one commit future's resolution.
func (st *runState) await(cmt *gateway.Commit, cwg *sync.WaitGroup) {
	st.submitted.Add(1)
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		// The future resolves within the ordering timeout even after
		// the run context ends, so the drain below is bounded.
		if _, err := cmt.Status(context.Background()); err != nil {
			st.failed.Add(1)
			return
		}
		st.succeeded.Add(1)
	}()
}

// runOpenLoopClient fires arrivals at the client's rate share and drops
// the ones that find the in-flight window full.
func (st *runState) runOpenLoopClient(ctx context.Context, gw *gateway.Gateway, ci, numClients int) {
	cfg := st.cfg
	gw.SetMaxInFlight(cfg.MaxInFlight)
	gen := st.newGen(ci)
	perClientRate := cfg.Rate / float64(numClients)
	meanGap := time.Duration(float64(time.Second) / perClientRate)
	wallGap := cfg.Model.ScaledDelay(meanGap)
	var cwg sync.WaitGroup

	end := time.Now().Add(cfg.Model.ScaledDelay(cfg.Duration))
	next := time.Now()
	for time.Now().Before(end) {
		if ctx.Err() != nil {
			break
		}
		// Open loop: sleep to the next arrival, then fire without
		// waiting for the previous response.
		gap := wallGap
		if cfg.Arrival == Poisson {
			gap = time.Duration(gen.rng.ExpFloat64() * float64(wallGap))
		}
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		channel, fn, args := st.nextCall(gen)
		cmt, err := gw.TrySubmitAsync(ctx, channel, cfg.Chaincode, fn, args)
		if err != nil {
			if errors.Is(err, gateway.ErrWindowFull) {
				st.skipped.Add(1)
				continue
			}
			break // context canceled
		}
		st.await(cmt, &cwg)
	}
	cwg.Wait()
}

// runPipelineClient keeps Window transactions in flight: SubmitAsync
// blocks exactly while the window is full, so each completion
// immediately admits the next submission.
func (st *runState) runPipelineClient(ctx context.Context, gw *gateway.Gateway, ci int) {
	cfg := st.cfg
	gw.SetMaxInFlight(cfg.Window)
	gen := st.newGen(ci)
	var cwg sync.WaitGroup

	end := time.Now().Add(cfg.Model.ScaledDelay(cfg.Duration))
	for time.Now().Before(end) {
		if ctx.Err() != nil {
			break
		}
		channel, fn, args := st.nextCall(gen)
		cmt, err := gw.SubmitAsync(ctx, channel, cfg.Chaincode, fn, args)
		if err != nil {
			break // context canceled
		}
		st.await(cmt, &cwg)
	}
	cwg.Wait()
}
