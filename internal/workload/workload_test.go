package workload

import (
	"context"
	"testing"
	"time"

	"fabricsim/internal/costmodel"
	"fabricsim/internal/fabnet"
	"fabricsim/internal/metrics"
	"fabricsim/internal/policy"
)

func testNet(t *testing.T, col *metrics.Collector) *fabnet.Network {
	t.Helper()
	n, err := fabnet.Build(fabnet.Config{
		Orderer:           fabnet.Solo,
		NumEndorsingPeers: 2,
		Policy:            policy.OrOverPeers(2),
		Model:             costmodel.Default(0.05),
		Collector:         col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	if err := n.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunGeneratesAtRate(t *testing.T) {
	n := testNet(t, nil)
	stats, err := Run(context.Background(), n.Clients, Config{
		Rate:     40,
		Duration: 3 * time.Second,
		Model:    costmodel.Default(0.05),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 40 tps x 3s = 120 expected arrivals.
	if stats.Submitted < 100 || stats.Submitted > 140 {
		t.Errorf("submitted = %d, want ~120", stats.Submitted)
	}
	if stats.Succeeded == 0 {
		t.Errorf("nothing committed: %+v", stats)
	}
	if stats.Submitted != stats.Succeeded+stats.Failed {
		t.Errorf("accounting mismatch: %+v", stats)
	}
}

func TestRunPoissonArrivals(t *testing.T) {
	n := testNet(t, nil)
	stats, err := Run(context.Background(), n.Clients, Config{
		Rate:     40,
		Duration: 3 * time.Second,
		Arrival:  Poisson,
		Model:    costmodel.Default(0.05),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted < 60 || stats.Submitted > 200 {
		t.Errorf("poisson submitted = %d, want near 120", stats.Submitted)
	}
}

func TestRunPipelineWindowScalesThroughput(t *testing.T) {
	// The same network must commit strictly more transactions when each
	// client pipelines 16 in flight than when it runs the legacy
	// one-at-a-time closed loop (window=1).
	committed := make(map[int]int64)
	for _, window := range []int{1, 16} {
		n := testNet(t, nil)
		stats, err := Run(context.Background(), n.Clients, Config{
			Mode:     Pipeline,
			Window:   window,
			Duration: 3 * time.Second,
			Model:    costmodel.Default(0.05),
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Submitted == 0 || stats.Succeeded == 0 {
			t.Fatalf("window %d: nothing committed: %+v", window, stats)
		}
		if stats.Submitted != stats.Succeeded+stats.Failed {
			t.Fatalf("window %d: accounting mismatch: %+v", window, stats)
		}
		committed[window] = stats.Succeeded
	}
	if committed[16] <= committed[1] {
		t.Errorf("pipelining did not scale: window=1 committed %d, window=16 committed %d",
			committed[1], committed[16])
	}
}

func TestRunValidation(t *testing.T) {
	n := testNet(t, nil)
	if _, err := Run(context.Background(), n.Clients, Config{Rate: 0, Duration: time.Second}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Run(context.Background(), n.Clients, Config{Rate: 10, Duration: 0}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(context.Background(), nil, Config{Rate: 10, Duration: time.Second}); err == nil {
		t.Error("no clients accepted")
	}
}

func TestZipfSkewsKeyPopularity(t *testing.T) {
	st := &runState{cfg: Config{KeySpace: 100, ZipfS: 2.0, Seed: 7, Fn: "write"}, value: []byte("v")}
	gen := st.newGen(0)
	counts := make(map[int]int)
	for i := 0; i < 2000; i++ {
		counts[gen.pick(100)]++
	}
	// Rank 0 must dominate under s=2 skew; a uniform draw would give
	// each key ~20 hits.
	if counts[0] < 500 {
		t.Errorf("hottest key drew %d of 2000, want Zipfian concentration", counts[0])
	}
	// Determinism: the same seed reproduces the same draw sequence.
	g1, g2 := st.newGen(3), st.newGen(3)
	for i := 0; i < 100; i++ {
		if a, b := g1.pick(100), g2.pick(100); a != b {
			t.Fatalf("draw %d: %d != %d with equal seeds", i, a, b)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	n := testNet(t, nil)
	if _, err := Run(context.Background(), n.Clients, Config{
		Rate: 10, Duration: time.Second, ZipfS: 0.9, KeySpace: 10,
	}); err == nil {
		t.Error("ZipfS <= 1 accepted")
	}
	if _, err := Run(context.Background(), n.Clients, Config{
		Rate: 10, Duration: time.Second, ZipfS: 1.5,
	}); err == nil {
		t.Error("ZipfS without a key space accepted")
	}
	if _, err := Run(context.Background(), n.Clients, Config{
		Rate: 10, Duration: time.Second, Profile: "nope",
	}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestSmallBankProfileOpMix(t *testing.T) {
	cfg := Config{Profile: ProfileSmallBank, Rate: 1, Seed: 11, Duration: time.Second}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Chaincode != "smallbank" || cfg.KeySpace != 1000 {
		t.Fatalf("profile defaults = chaincode %q keyspace %d", cfg.Chaincode, cfg.KeySpace)
	}
	st := &runState{cfg: cfg, value: []byte("v")}
	gen := st.newGen(0)
	fns := make(map[string]int)
	for i := 0; i < 2000; i++ {
		_, fn, args := st.nextCall(gen)
		fns[fn]++
		switch fn {
		case "sendpayment":
			if len(args) != 3 {
				t.Fatalf("sendpayment args = %d", len(args))
			}
		case "amalgamate":
			if len(args) != 2 {
				t.Fatalf("amalgamate args = %d", len(args))
			}
		case "query":
			if len(args) != 1 {
				t.Fatalf("query args = %d", len(args))
			}
		case "deposit", "transact", "writecheck":
			if len(args) != 2 {
				t.Fatalf("%s args = %d", fn, len(args))
			}
		default:
			t.Fatalf("unexpected fn %q", fn)
		}
	}
	for _, fn := range []string{"deposit", "transact", "sendpayment", "writecheck", "amalgamate", "query"} {
		if fns[fn] == 0 {
			t.Errorf("op %s never drawn in 2000 calls", fn)
		}
	}
	// send-payment's 25% share should be the plurality.
	if fns["sendpayment"] < fns["deposit"]/2 {
		t.Errorf("op mix off: %v", fns)
	}
}

func TestRunKeySpaceContention(t *testing.T) {
	col := metrics.NewCollector()
	n := testNet(t, col)
	model := costmodel.Default(0.05)
	stats, err := Run(context.Background(), n.Clients, Config{
		Rate:     60,
		Duration: 3 * time.Second,
		Model:    model,
		Fn:       "readwrite",
		KeySpace: 2, // two hot keys -> MVCC conflicts
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed == 0 {
		t.Error("no failures despite 2-key readwrite contention")
	}
	sum := col.Summarize(metrics.SummaryOptions{TimeScale: model.TimeScale})
	if sum.Invalid == 0 {
		t.Error("collector recorded no invalid txs")
	}
}
