package metrics

import (
	"fmt"
	"testing"
	"time"

	"fabricsim/internal/types"
)

// record inserts a full life-cycle record with the given offsets from a
// base time.
func record(c *Collector, id string, base time.Time, submit, endorse, order, commit time.Duration, code types.ValidationCode) {
	txid := types.TxID(id)
	c.Submitted(txid, base.Add(submit))
	c.Endorsed(txid, base.Add(endorse))
	c.BroadcastAcked(txid, base.Add(endorse))
	c.Ordered(txid, base.Add(order))
	c.Committed(txid, base.Add(commit), code)
}

func TestSummarizeBasics(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	// 100 txs submitted over 10s (scale 1), each committing 500ms later.
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		record(c, fmt.Sprintf("t%d", i), base, at, at+100*time.Millisecond, at+300*time.Millisecond, at+500*time.Millisecond, types.ValidationValid)
	}
	s := c.Summarize(SummaryOptions{TimeScale: 1.0})
	if s.Offered == 0 || s.Committed == 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	// ~10 tps submission -> throughput near 10.
	if s.ValidateTPS < 8 || s.ValidateTPS > 12 {
		t.Errorf("ValidateTPS = %.1f, want ~10", s.ValidateTPS)
	}
	if got := s.TotalLatency.Avg; got < 450*time.Millisecond || got > 550*time.Millisecond {
		t.Errorf("total latency = %s, want ~500ms", got)
	}
	if got := s.ExecuteLatency.Avg; got < 90*time.Millisecond || got > 110*time.Millisecond {
		t.Errorf("execute latency = %s, want ~100ms", got)
	}
	if got := s.ValidateLatency.Avg; got < 190*time.Millisecond || got > 210*time.Millisecond {
		t.Errorf("validate latency = %s, want ~200ms", got)
	}
}

func TestSummarizeTimeScale(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	// Wall 50ms latency at scale 0.1 => 500ms model latency.
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		record(c, fmt.Sprintf("t%d", i), base, at, at+10*time.Millisecond, at+30*time.Millisecond, at+50*time.Millisecond, types.ValidationValid)
	}
	s := c.Summarize(SummaryOptions{TimeScale: 0.1})
	if got := s.TotalLatency.Avg; got < 450*time.Millisecond || got > 550*time.Millisecond {
		t.Errorf("unscaled latency = %s, want ~500ms", got)
	}
	// Wall 100 tps at scale 0.1 => 10 model tps.
	if s.ValidateTPS < 8 || s.ValidateTPS > 12 {
		t.Errorf("ValidateTPS = %.1f, want ~10", s.ValidateTPS)
	}
}

func TestSummarizeInvalidAndRejected(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	for i := 0; i < 30; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		code := types.ValidationValid
		if i%3 == 0 {
			code = types.ValidationMVCCConflict
		}
		record(c, fmt.Sprintf("t%d", i), base, at, at+time.Millisecond, at+2*time.Millisecond, at+3*time.Millisecond, code)
	}
	rej := types.TxID("rejected-1")
	c.Submitted(rej, base.Add(150*time.Millisecond))
	c.Rejected(rej)

	s := c.Summarize(SummaryOptions{TimeScale: 1.0, RejectLatency: 3 * time.Second})
	if s.Invalid == 0 {
		t.Error("invalid txs not counted")
	}
	if s.RejectedCount != 1 {
		t.Errorf("rejected = %d", s.RejectedCount)
	}
	// The rejected tx contributes its 3s cap to total latency.
	if s.TotalLatency.Max < 3*time.Second {
		t.Errorf("max latency = %s, reject cap not applied", s.TotalLatency.Max)
	}
}

func TestBlockTime(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	for i := 0; i < 60; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		record(c, fmt.Sprintf("t%d", i), base, at, at, at, at, types.ValidationValid)
	}
	for i := 0; i < 6; i++ {
		c.Block(BlockEvent{Number: uint64(i + 1), CutAt: base.Add(time.Duration(i) * 100 * time.Millisecond), Txs: 10})
	}
	s := c.Summarize(SummaryOptions{TimeScale: 1.0})
	if s.Blocks < 2 {
		t.Fatalf("blocks in window = %d", s.Blocks)
	}
	if s.BlockTime < 90*time.Millisecond || s.BlockTime > 110*time.Millisecond {
		t.Errorf("block time = %s, want ~100ms", s.BlockTime)
	}
	if s.AvgBlockSize != 10 {
		t.Errorf("avg block size = %.1f", s.AvgBlockSize)
	}
	if s.BlockTPS < 90 || s.BlockTPS > 110 {
		t.Errorf("block tps = %.1f, want ~100", s.BlockTPS)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	s := c.Summarize(SummaryOptions{TimeScale: 1.0})
	if s.Offered != 0 || s.ValidateTPS != 0 {
		t.Errorf("non-zero summary from empty collector: %+v", s)
	}
}

func TestLatencyStatsPercentiles(t *testing.T) {
	lats := make([]time.Duration, 0, 100)
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	st := reduceLatency(lats)
	if st.Count != 100 {
		t.Errorf("count = %d", st.Count)
	}
	if st.P50 < 49*time.Millisecond || st.P50 > 51*time.Millisecond {
		t.Errorf("p50 = %s", st.P50)
	}
	if st.P95 < 94*time.Millisecond || st.P95 > 97*time.Millisecond {
		t.Errorf("p95 = %s", st.P95)
	}
	if st.P99 < 98*time.Millisecond || st.P99 > 100*time.Millisecond {
		t.Errorf("p99 = %s", st.P99)
	}
	if st.Max != 100*time.Millisecond {
		t.Errorf("max = %s", st.Max)
	}
	if st.Avg != 50500*time.Microsecond {
		t.Errorf("avg = %s", st.Avg)
	}
}

func TestRecordsSnapshot(t *testing.T) {
	c := NewCollector()
	c.Submitted("a", time.Now())
	recs := c.Records()
	if len(recs) != 1 || recs[0].ID != "a" {
		t.Errorf("records = %+v", recs)
	}
	// Snapshot must be a copy.
	recs[0].ID = "mutated"
	if c.Records()[0].ID != "a" {
		t.Error("snapshot aliased internal state")
	}
}

func TestBlocksSorted(t *testing.T) {
	c := NewCollector()
	c.Block(BlockEvent{Number: 3})
	c.Block(BlockEvent{Number: 1})
	c.Block(BlockEvent{Number: 2})
	bs := c.Blocks()
	for i := 1; i < len(bs); i++ {
		if bs[i].Number < bs[i-1].Number {
			t.Fatal("blocks not sorted")
		}
	}
}

// TestBlockTPSExcludesFirstBlock is the regression for the block-TPS
// overcount: n in-window blocks span only n-1 inter-block intervals, so
// the first block's transactions must not count toward the rate. With
// an outsized first block the old avg-size/block-time formula read an
// order of magnitude high.
func TestBlockTPSExcludesFirstBlock(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	// Submissions spanning 10s so the trimmed window [1.5s, 8.5s] holds
	// all three blocks.
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		record(c, fmt.Sprintf("t%d", i), base, at, at, at, at, types.ValidationValid)
	}
	c.Block(BlockEvent{Number: 1, CutAt: base.Add(3 * time.Second), Txs: 300})
	c.Block(BlockEvent{Number: 2, CutAt: base.Add(4 * time.Second), Txs: 10})
	c.Block(BlockEvent{Number: 3, CutAt: base.Add(5 * time.Second), Txs: 10})
	s := c.Summarize(SummaryOptions{TimeScale: 1.0})
	if s.Blocks != 3 {
		t.Fatalf("blocks in window = %d, want 3", s.Blocks)
	}
	// 20 txs committed over the 2s span between block 1 and block 3.
	if s.BlockTPS < 9 || s.BlockTPS > 11 {
		t.Errorf("block tps = %.1f, want ~10 (first block's 300 txs excluded)", s.BlockTPS)
	}
	if s.BlockTime < 990*time.Millisecond || s.BlockTime > 1010*time.Millisecond {
		t.Errorf("block time = %s, want ~1s", s.BlockTime)
	}
}

func TestCommitStageBreakdown(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		record(c, fmt.Sprintf("t%d", i), base, at, at, at, at, types.ValidationValid)
	}
	// Two blocks inside the window, one far outside it.
	for i, at := range []time.Duration{3 * time.Second, 4 * time.Second, time.Hour} {
		c.CommitStage(CommitStageEvent{
			Number:      uint64(i + 1),
			Txs:         100,
			Groups:      50,
			VSCC:        60 * time.Millisecond,
			Apply:       250 * time.Millisecond,
			Append:      15 * time.Millisecond,
			CommittedAt: base.Add(at),
		})
	}
	s := c.Summarize(SummaryOptions{TimeScale: 1.0})
	if s.VSCCStage.Count != 2 {
		t.Fatalf("in-window stage samples = %d, want 2", s.VSCCStage.Count)
	}
	if s.VSCCStage.Avg != 60*time.Millisecond || s.ApplyStage.Avg != 250*time.Millisecond || s.AppendStage.Avg != 15*time.Millisecond {
		t.Errorf("stage avgs = %s/%s/%s", s.VSCCStage.Avg, s.ApplyStage.Avg, s.AppendStage.Avg)
	}
	if s.AvgConflictGroups != 50 {
		t.Errorf("avg groups = %.1f, want 50", s.AvgConflictGroups)
	}
	if got := c.CommitStages(); len(got) != 3 {
		t.Errorf("CommitStages snapshot = %d events, want 3", len(got))
	}
}

func TestCommitStageAbortAccounting(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		record(c, fmt.Sprintf("t%d", i), base, at, at, at, at, types.ValidationValid)
	}
	// Two in-window blocks with conflict aborts; one outside the window
	// that must not count.
	for i, at := range []time.Duration{3 * time.Second, 4 * time.Second, time.Hour} {
		c.CommitStage(CommitStageEvent{
			Number:         uint64(i + 1),
			Txs:            100,
			MVCCAborts:     8,
			EarlyAborts:    2,
			WastedValidate: 4 * time.Millisecond,
			CommittedAt:    base.Add(at),
		})
	}
	s := c.Summarize(SummaryOptions{TimeScale: 1.0})
	if s.MVCCAborts != 16 || s.EarlyAborts != 4 {
		t.Errorf("aborts = %d mvcc %d early, want 16/4", s.MVCCAborts, s.EarlyAborts)
	}
	// 20 aborts over 200 in-window block txs.
	if s.AbortRate < 0.099 || s.AbortRate > 0.101 {
		t.Errorf("abort rate = %.3f, want 0.10", s.AbortRate)
	}
	if s.WastedValidateCPU != 8*time.Millisecond {
		t.Errorf("wasted validate = %s, want 8ms", s.WastedValidateCPU)
	}
}

// TestEndorseBreakdown checks the per-peer endorsement statistics: the
// in-window sample count, model-time latency percentiles (p99
// included), the per-peer counts, and the max/mean balance skew.
func TestEndorseBreakdown(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	// Anchor the measurement window around now: submissions span
	// [-10s, +2s], so after the 15% trim the window still contains the
	// samples Endorse stamps with the current time.
	c.Submitted("tx-a", base.Add(-10*time.Second))
	c.Submitted("tx-b", base.Add(2*time.Second))
	// 3 endorsements on peer1, 1 on peer2. Latencies are wall-clock at
	// TimeScale 0.5, so 50ms wall = 100ms model.
	for i := 0; i < 3; i++ {
		c.Endorse("peer1", 50*time.Millisecond)
	}
	c.Endorse("peer2", 150*time.Millisecond)

	sum := c.Summarize(SummaryOptions{TimeScale: 0.5})
	if sum.Endorsements != 4 {
		t.Fatalf("Endorsements = %d, want 4", sum.Endorsements)
	}
	if got := sum.EndorsesPerPeer["peer1"]; got != 3 {
		t.Errorf("peer1 endorsements = %d, want 3", got)
	}
	if got := sum.EndorsesPerPeer["peer2"]; got != 1 {
		t.Errorf("peer2 endorsements = %d, want 1", got)
	}
	// max/mean = 3 / ((3+1)/2) = 1.5
	if sum.EndorseSkew < 1.49 || sum.EndorseSkew > 1.51 {
		t.Errorf("EndorseSkew = %f, want 1.5", sum.EndorseSkew)
	}
	if sum.EndorseLatency.P50 != 100*time.Millisecond {
		t.Errorf("endorse p50 = %s, want 100ms (model time)", sum.EndorseLatency.P50)
	}
	if sum.EndorseLatency.P99 < sum.EndorseLatency.P50 {
		t.Errorf("endorse p99 = %s below p50 %s", sum.EndorseLatency.P99, sum.EndorseLatency.P50)
	}
	if sum.EndorseLatency.Max != 300*time.Millisecond {
		t.Errorf("endorse max = %s, want 300ms", sum.EndorseLatency.Max)
	}
}

// TestGossipAndCommitLagSummary checks the dissemination reductions:
// source counting, mean hop count, duplicate/eviction counters, and the
// windowed cluster-wide commit-lag distribution.
func TestGossipAndCommitLagSummary(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	// Anchor the measurement window with submissions 10s apart.
	c.Submitted("tx1", base)
	c.Submitted("tx2", base.Add(10*time.Second))

	c.GossipBlock("deliver", 0)
	c.GossipBlock("gossip", 1)
	c.GossipBlock("gossip", 3)
	c.GossipDuplicate()
	c.GossipDuplicate()
	c.AntiEntropyPull(5)
	c.LeaderElection()
	c.SubscriberEvicted()

	mid := base.Add(5 * time.Second) // inside the trimmed window
	c.PeerCommit(100*time.Millisecond, mid)
	c.PeerCommit(300*time.Millisecond, mid)
	c.PeerCommit(time.Hour, base) // outside the window: excluded

	s := c.Summarize(SummaryOptions{TimeScale: 1})
	if s.GossipBlocks != 2 || s.DeliverBlocks != 1 {
		t.Errorf("gossip/deliver blocks = %d/%d, want 2/1", s.GossipBlocks, s.DeliverBlocks)
	}
	if s.MeanGossipHops != 2.0 {
		t.Errorf("mean hops = %v, want 2.0", s.MeanGossipHops)
	}
	if s.GossipDuplicates != 2 || s.AntiEntropyBlocks != 5 {
		t.Errorf("dups/pulled = %d/%d, want 2/5", s.GossipDuplicates, s.AntiEntropyBlocks)
	}
	if s.LeaderElections != 1 || s.SubscriberEvictions != 1 {
		t.Errorf("elections/evictions = %d/%d, want 1/1", s.LeaderElections, s.SubscriberEvictions)
	}
	if s.CommitLag.Count != 2 {
		t.Fatalf("commit-lag samples = %d, want 2 (out-of-window excluded)", s.CommitLag.Count)
	}
	if s.CommitLag.Avg != 200*time.Millisecond {
		t.Errorf("commit-lag avg = %v, want 200ms", s.CommitLag.Avg)
	}
	if s.CommitLag.Max != 300*time.Millisecond {
		t.Errorf("commit-lag max = %v, want 300ms", s.CommitLag.Max)
	}
}
