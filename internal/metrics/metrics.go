// Package metrics collects per-transaction phase timestamps and per-
// block events, and reduces them into the paper's three metrics
// (Definitions 4.1-4.3): throughput, latency, and block time — overall
// and per phase (execute / order / validate).
//
// All raw timestamps are wall-clock; summaries convert durations back
// into model time through the cost model's TimeScale so reported numbers
// are comparable with the paper regardless of how compressed a run was.
package metrics

import (
	"sort"
	"sync"
	"time"

	"fabricsim/internal/types"
)

// TxRecord carries one transaction's phase timestamps.
type TxRecord struct {
	ID types.TxID
	// Submitted is when the client created the proposal (arrival).
	Submitted time.Time
	// Endorsed is when the client finished collecting endorsements —
	// the end of the execute phase.
	Endorsed time.Time
	// Broadcast is when the ordering service accepted the envelope.
	Broadcast time.Time
	// Ordered is when the block containing the transaction was cut —
	// the end of the order phase.
	Ordered time.Time
	// Committed is when the observing peer committed the block — the
	// end of the validate phase.
	Committed time.Time
	// Code is the final validation outcome.
	Code types.ValidationCode
	// Rejected marks client-side rejection (endorsement failure or the
	// paper's 3-second ordering timeout).
	Rejected bool
	// Attempt is the 1-based gateway retry attempt that produced this
	// record (each attempt re-proposes under a fresh TxID, so a retried
	// logical transaction leaves one record per attempt). Records with
	// Attempt > 1 are final-or-intermediate retry attempts; their
	// Submitted→Committed span excludes the client's backoff sleeps,
	// unlike the whole-invoke latency the client observes.
	Attempt int
}

// BlockEvent is one block cut by the ordering service. Channel
// disambiguates block numbers in multi-channel networks, where each
// channel numbers its chain independently.
type BlockEvent struct {
	Number  uint64
	Channel string
	CutAt   time.Time
	Txs     int
}

// CommitStageEvent is one block's validate-phase stage breakdown as
// observed on the reporting peer's commit pipeline: wall durations of
// the VSCC, dependency-analysis + state-apply, and block-store append
// stages, plus the conflict-group count the dependency analyzer found.
type CommitStageEvent struct {
	Number      uint64
	Channel     string
	Txs         int
	Groups      int
	VSCC        time.Duration
	Apply       time.Duration
	Append      time.Duration
	CommittedAt time.Time
	// MVCCAborts counts the block's MVCC_READ_CONFLICT transactions and
	// EarlyAborts its EARLY_ABORT_CONFLICT ones (conflict-aware ordering
	// drops, which never reached validate CPU).
	MVCCAborts  int
	EarlyAborts int
	// WastedValidate is the modeled validate CPU the block spent on
	// transactions that then failed MVCC — work early abort would have
	// saved.
	WastedValidate time.Duration
}

// endorseSample is one successful endorsement round trip as observed by
// a gateway: which peer served it, when, and the wall round-trip time.
type endorseSample struct {
	peer string
	at   time.Time
	rtt  time.Duration
}

// gossipSample is one block accepted by a peer's gossip layer: how it
// arrived (deliver / gossip / antientropy) and the hop count it carried.
type gossipSample struct {
	source string
	hops   int
}

// commitLagSample is one (peer, block) commit: the wall lag from block
// cut to that peer's commit, and when the commit happened (windowing).
type commitLagSample struct {
	at  time.Time
	lag time.Duration
}

// Collector accumulates records; safe for concurrent use.
type Collector struct {
	mu         sync.Mutex
	byTx       map[types.TxID]*TxRecord
	blocks     []BlockEvent
	stages     []CommitStageEvent
	endorses   []endorseSample
	gossips    []gossipSample
	commitLags []commitLagSample
	gossipDups int
	aePulled   int
	evictions  int
	elections  int
	snapshots  int
	failovers  int
	start      time.Time

	// live carries the incrementally-maintained counters the sampler and
	// the obs /metrics endpoint read without scanning byTx.
	live liveCounters

	// sampler state (see sampler.go).
	samplerMu   sync.Mutex
	samples     []SamplePoint
	samplerStop chan struct{}
}

// NewCollector creates an empty collector anchored at now.
func NewCollector() *Collector {
	return &Collector{
		byTx:  make(map[types.TxID]*TxRecord),
		start: time.Now(),
	}
}

func (c *Collector) rec(id types.TxID) *TxRecord {
	r, ok := c.byTx[id]
	if !ok {
		r = &TxRecord{ID: id}
		c.byTx[id] = r
	}
	return r
}

// Submitted records proposal creation time.
func (c *Collector) Submitted(id types.TxID, t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rec(id)
	if r.Submitted.IsZero() {
		c.live.Submitted++
		c.live.InFlight++
	}
	r.Submitted = t
}

// Attempt records which 1-based gateway retry attempt this transaction
// ID belongs to.
func (c *Collector) Attempt(id types.TxID, attempt int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec(id).Attempt = attempt
}

// Endorsed records the end of the execute phase.
func (c *Collector) Endorsed(id types.TxID, t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec(id).Endorsed = t
}

// BroadcastAcked records ordering-service acceptance.
func (c *Collector) BroadcastAcked(id types.TxID, t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec(id).Broadcast = t
}

// Ordered records the cut time of the transaction's block.
func (c *Collector) Ordered(id types.TxID, t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec(id).Ordered = t
}

// Committed records the end of the validate phase.
func (c *Collector) Committed(id types.TxID, t time.Time, code types.ValidationCode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rec(id)
	if r.Committed.IsZero() {
		if code.Valid() {
			c.live.Committed++
		} else {
			c.live.Aborted++
		}
		if !r.Submitted.IsZero() && !r.Rejected {
			c.live.InFlight--
		}
	}
	r.Committed = t
	r.Code = code
}

// Rejected marks a client-side rejection.
func (c *Collector) Rejected(id types.TxID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rec(id)
	if !r.Rejected {
		c.live.Rejected++
		if !r.Submitted.IsZero() && r.Committed.IsZero() {
			c.live.InFlight--
		}
	}
	r.Rejected = true
}

// Block records one cut block.
func (c *Collector) Block(ev BlockEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live.Blocks++
	c.blocks = append(c.blocks, ev)
}

// Endorse records one successful endorsement round trip served by the
// named peer (wall-clock rtt; summaries unscale it to model time).
func (c *Collector) Endorse(peer string, rtt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.endorses = append(c.endorses, endorseSample{peer: peer, at: time.Now(), rtt: rtt})
}

// CommitStage records one committed block's pipeline stage breakdown.
func (c *Collector) CommitStage(ev CommitStageEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = append(c.stages, ev)
}

// GossipBlock records one block accepted by a peer's gossip layer with
// its arrival source and gossip hop count.
func (c *Collector) GossipBlock(source string, hops int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gossips = append(c.gossips, gossipSample{source: source, hops: hops})
}

// GossipDuplicate counts one block suppressed by a gossip dedup cache.
func (c *Collector) GossipDuplicate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gossipDups++
}

// AntiEntropyPull counts n blocks transferred by one anti-entropy pull.
func (c *Collector) AntiEntropyPull(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aePulled += n
}

// LeaderElection counts one gossip org-leader (re-)election.
func (c *Collector) LeaderElection() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elections++
}

// SnapshotBootstrap counts one peer installing another peer's ledger
// snapshot instead of replaying the gap block by block.
func (c *Collector) SnapshotBootstrap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snapshots++
}

// BroadcastFailover counts one gateway broadcast retried on another
// OSN after a failed attempt.
func (c *Collector) BroadcastFailover() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failovers++
}

// SubscriberEvicted counts one deliver subscriber pruned by an orderer
// after consecutive failed pushes.
func (c *Collector) SubscriberEvicted() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictions++
}

// PeerCommit records one peer's commit of one block: the wall-clock lag
// from block cut to this peer's commit. Unlike per-transaction commit
// records (taken on the event peer only), these samples come from every
// peer, so the summary's commit lag captures dissemination stragglers.
func (c *Collector) PeerCommit(lag time.Duration, at time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.live.lagSum += lag
	c.live.lagCount++
	c.commitLags = append(c.commitLags, commitLagSample{at: at, lag: lag})
}

// CommitStages returns a snapshot copy of the recorded stage events.
func (c *Collector) CommitStages() []CommitStageEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CommitStageEvent, len(c.stages))
	copy(out, c.stages)
	return out
}

// Records returns a snapshot copy of all transaction records.
func (c *Collector) Records() []TxRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TxRecord, 0, len(c.byTx))
	for _, r := range c.byTx {
		out = append(out, *r)
	}
	return out
}

// Blocks returns a snapshot copy of block events, sorted by cut time
// (numbers tie across channels, so cut order is the only total order).
func (c *Collector) Blocks() []BlockEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]BlockEvent, len(c.blocks))
	copy(out, c.blocks)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CutAt.Equal(out[j].CutAt) {
			return out[i].CutAt.Before(out[j].CutAt)
		}
		return out[i].Number < out[j].Number
	})
	return out
}

// PhaseLatency keys: the lifecycle phases of the critical-path
// decomposition, in order.
const (
	PhaseEndorse  = "endorse"  // submitted -> endorsements collected
	PhaseSubmit   = "submit"   // endorsed -> ordering-service ack
	PhaseOrder    = "order"    // ack -> block cut
	PhaseValidate = "validate" // block cut -> commit
)

// PhaseOrdering lists the PhaseLatency keys in lifecycle order, for
// stable table rendering.
func PhaseOrdering() []string {
	return []string{PhaseEndorse, PhaseSubmit, PhaseOrder, PhaseValidate}
}

// LatencyStats summarizes a latency distribution in model time.
type LatencyStats struct {
	Count int
	Avg   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summary is the reduction of one experiment run.
type Summary struct {
	// Offered is the number of transactions submitted inside the
	// measurement window.
	Offered int
	// Committed is the number of valid committed transactions.
	Committed int
	// Invalid counts committed-but-invalid transactions.
	Invalid int
	// RejectedCount counts client-side rejections (timeouts included).
	RejectedCount int

	// Model-time throughput in transactions per second per phase
	// (Definition 4.1 applied at each phase boundary).
	ExecuteTPS  float64
	OrderTPS    float64
	ValidateTPS float64

	// End-to-end and per-phase latency (Definition 4.2).
	TotalLatency         LatencyStats
	ExecuteLatency       LatencyStats
	OrderLatency         LatencyStats // broadcast -> block cut
	ValidateLatency      LatencyStats // block cut -> commit
	OrderValidateLatency LatencyStats // endorsed -> commit (paper's "order & validate")

	// PhaseLatency is the critical-path decomposition over the in-window
	// committed cohort, keyed by lifecycle phase: "endorse" (submitted →
	// endorsed), "submit" (endorsed → broadcast ack), "order" (broadcast
	// → block cut), "validate" (block cut → commit). The four phases
	// partition each transaction's end-to-end latency, so their per-tx
	// sums reconstruct TotalLatency. Benches print this as the
	// latency-breakdown table (p50/p99 per stage).
	PhaseLatency map[string]LatencyStats

	// RetriedTxs counts in-window committed-valid transactions that were
	// gateway retry attempts (attempt > 1), and FinalAttemptLatency is
	// their submitted→committed distribution — the last attempt only,
	// excluding every earlier attempt and backoff sleep. Comparing it
	// with TotalLatency shows how much retry backoff skews the tail.
	RetriedTxs          int
	FinalAttemptLatency LatencyStats

	// BlockTime is the mean inter-block interval (Definition 4.3) and
	// BlockTPS the ordering-service throughput derived from it.
	BlockTime    time.Duration
	BlockTPS     float64
	Blocks       int
	AvgBlockSize float64

	// Per-stage validate-phase breakdown on the observing peer, one
	// sample per committed block: VSCC, dependency analysis + state
	// apply, and block-store append (model time).
	VSCCStage   LatencyStats
	ApplyStage  LatencyStats
	AppendStage LatencyStats
	// AvgConflictGroups is the mean conflict-group count per in-window
	// block (≈ block size on a no-contention workload, 1 when every
	// transaction chains on the same keys).
	AvgConflictGroups float64
	// MVCCAborts and EarlyAborts total the in-window blocks' conflict
	// aborts: transactions invalidated by a stale read set at validate
	// time, and transactions the conflict-aware orderer dropped before
	// validation, respectively.
	MVCCAborts  int
	EarlyAborts int
	// AbortRate is (MVCCAborts + EarlyAborts) / in-window block
	// transactions — the fraction of ordered load lost to conflicts.
	AbortRate float64
	// WastedValidateCPU totals the modeled validate CPU spent on
	// transactions that then failed MVCC (model time): the work
	// conflict-aware early abort exists to eliminate.
	WastedValidateCPU time.Duration

	// Endorsements counts in-window endorsement round trips and
	// EndorseLatency summarizes their distribution (model time): the
	// per-call service view of the execute phase, one sample per
	// (transaction, endorsing peer) pair.
	Endorsements   int
	EndorseLatency LatencyStats
	// EndorsesPerPeer breaks the in-window endorsement count down by
	// serving peer, and EndorseSkew is the max/mean ratio of those
	// counts (1.0 = perfectly balanced across the replicas that served
	// at least one endorsement).
	EndorsesPerPeer map[string]int
	EndorseSkew     float64

	// Gossip-dissemination breakdown (whole run, not windowed):
	// GossipBlocks counts blocks peers accepted via push gossip,
	// DeliverBlocks via a direct orderer push, AntiEntropyBlocks via
	// ranged pulls. MeanGossipHops averages the hop counts of
	// gossip-accepted blocks; GossipDuplicates counts dedup-cache drops;
	// LeaderElections counts org-leader (re-)elections; and
	// SubscriberEvictions counts deliver subscribers the orderers pruned.
	GossipBlocks        int
	DeliverBlocks       int
	AntiEntropyBlocks   int
	MeanGossipHops      float64
	GossipDuplicates    int
	LeaderElections     int
	SubscriberEvictions int
	// SnapshotBootstraps counts peers that installed another peer's
	// ledger snapshot (snapshot-then-tail repair) instead of replaying
	// their whole gap block by block.
	SnapshotBootstraps int
	// BroadcastFailovers counts gateway broadcasts that had to retry on
	// another OSN after their first pick failed (one count per extra
	// attempt, not per transaction).
	BroadcastFailovers int

	// CommitLag is the block-cut -> per-peer-commit distribution over
	// every (peer, block) pair committed inside the window (model time):
	// the cluster-wide dissemination + validation tail, where a lagging
	// gossip path shows up even though the event peer stays fast.
	CommitLag LatencyStats
}

// SummaryOptions controls the reduction.
type SummaryOptions struct {
	// TimeScale is the cost model's scale; durations are divided by it.
	TimeScale float64
	// TrimFraction drops this fraction of the run at each end (warmup
	// and drain) when computing throughput. Default 0.15.
	TrimFraction float64
	// RejectLatency is the model-time latency charged to rejected
	// transactions (the paper's 3s ordering timeout); zero excludes
	// rejected transactions from latency statistics.
	RejectLatency time.Duration
	// WindowStart/WindowEnd, when both set, replace the trim-based
	// steady-state window with an explicit wall-clock interval. The
	// chaos soak uses this to attribute throughput and commit lag to
	// individual fault windows.
	WindowStart, WindowEnd time.Time
}

// Summarize reduces the collected records.
func (c *Collector) Summarize(opts SummaryOptions) Summary {
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	if opts.TrimFraction <= 0 {
		opts.TrimFraction = 0.15
	}
	recs := c.Records()
	blocks := c.Blocks()

	var s Summary
	if len(recs) == 0 {
		return s
	}

	// Measurement window: trim the first and last fraction of the
	// submission interval to measure steady state.
	var first, last time.Time
	for _, r := range recs {
		if r.Submitted.IsZero() {
			continue
		}
		if first.IsZero() || r.Submitted.Before(first) {
			first = r.Submitted
		}
		if r.Submitted.After(last) {
			last = r.Submitted
		}
	}
	span := last.Sub(first)
	wStart := first.Add(time.Duration(float64(span) * opts.TrimFraction))
	wEnd := last.Add(-time.Duration(float64(span) * opts.TrimFraction))
	window := wEnd.Sub(wStart)
	if window <= 0 {
		window = span
		wStart, wEnd = first, last
	}
	if !opts.WindowStart.IsZero() && !opts.WindowEnd.IsZero() && opts.WindowEnd.After(opts.WindowStart) {
		wStart, wEnd = opts.WindowStart, opts.WindowEnd
		window = wEnd.Sub(wStart)
	}
	modelWindow := time.Duration(float64(window) / opts.TimeScale)
	if modelWindow <= 0 {
		modelWindow = time.Nanosecond
	}

	// Negative spans can appear when a reply outraces an ack under
	// heavy load; clamp to zero rather than pollute averages.
	unscale := func(d time.Duration) time.Duration {
		if d < 0 {
			return 0
		}
		return time.Duration(float64(d) / opts.TimeScale)
	}

	// Phase throughputs count phase-completion events whose own
	// timestamp falls inside the window (Definition 4.1: the rate at
	// which transactions are committed), so a saturated pipeline reads
	// its service capacity even while backlog is still building.
	// Latency statistics use the cohort of transactions submitted
	// inside the window (Definition 4.2).
	inWin := func(t time.Time) bool {
		return !t.IsZero() && !t.Before(wStart) && !t.After(wEnd)
	}
	var totalLat, execLat, orderLat, valLat, ovLat []time.Duration
	var submitLat, finalLat []time.Duration
	var endorsedIn, orderedIn, committedIn int
	for _, r := range recs {
		submittedIn := inWin(r.Submitted)
		if submittedIn {
			s.Offered++
		}
		if r.Rejected {
			s.RejectedCount++
			if opts.RejectLatency > 0 && submittedIn {
				totalLat = append(totalLat, opts.RejectLatency)
			}
		}
		if inWin(r.Endorsed) {
			endorsedIn++
		}
		if inWin(r.Ordered) {
			orderedIn++
		}
		if inWin(r.Committed) {
			if r.Code.Valid() {
				committedIn++
			} else {
				s.Invalid++
			}
		}
		if !submittedIn {
			continue
		}
		if !r.Endorsed.IsZero() {
			execLat = append(execLat, unscale(r.Endorsed.Sub(r.Submitted)))
		}
		if !r.Ordered.IsZero() {
			ref := r.Broadcast
			if ref.IsZero() {
				ref = r.Endorsed
			}
			if !ref.IsZero() {
				orderLat = append(orderLat, unscale(r.Ordered.Sub(ref)))
			}
		}
		if !r.Endorsed.IsZero() && !r.Broadcast.IsZero() {
			submitLat = append(submitLat, unscale(r.Broadcast.Sub(r.Endorsed)))
		}
		if !r.Committed.IsZero() {
			totalLat = append(totalLat, unscale(r.Committed.Sub(r.Submitted)))
			if r.Code.Valid() && r.Attempt > 1 {
				s.RetriedTxs++
				finalLat = append(finalLat, unscale(r.Committed.Sub(r.Submitted)))
			}
			if !r.Ordered.IsZero() {
				valLat = append(valLat, unscale(r.Committed.Sub(r.Ordered)))
			}
			if !r.Endorsed.IsZero() {
				ovLat = append(ovLat, unscale(r.Committed.Sub(r.Endorsed)))
			}
		}
	}
	s.Committed = committedIn
	s.ExecuteTPS = float64(endorsedIn) / modelWindow.Seconds()
	s.OrderTPS = float64(orderedIn) / modelWindow.Seconds()
	s.ValidateTPS = float64(committedIn) / modelWindow.Seconds()

	s.TotalLatency = reduceLatency(totalLat)
	s.ExecuteLatency = reduceLatency(execLat)
	s.OrderLatency = reduceLatency(orderLat)
	s.ValidateLatency = reduceLatency(valLat)
	s.OrderValidateLatency = reduceLatency(ovLat)
	s.FinalAttemptLatency = reduceLatency(finalLat)
	s.PhaseLatency = map[string]LatencyStats{
		PhaseEndorse:  s.ExecuteLatency,
		PhaseSubmit:   reduceLatency(submitLat),
		PhaseOrder:    s.OrderLatency,
		PhaseValidate: s.ValidateLatency,
	}

	// Block time over blocks cut inside the window.
	var inWindowBlocks []BlockEvent
	totalTxs := 0
	for _, b := range blocks {
		if !b.CutAt.Before(wStart) && !b.CutAt.After(wEnd) {
			inWindowBlocks = append(inWindowBlocks, b)
			totalTxs += b.Txs
		}
	}
	s.Blocks = len(inWindowBlocks)
	if len(inWindowBlocks) >= 2 {
		span := inWindowBlocks[len(inWindowBlocks)-1].CutAt.Sub(inWindowBlocks[0].CutAt)
		s.BlockTime = unscale(span / time.Duration(len(inWindowBlocks)-1))
		s.AvgBlockSize = float64(totalTxs) / float64(len(inWindowBlocks))
		// n in-window blocks span only n-1 inter-block intervals: the
		// first block's transactions predate the measured span, so they
		// are excluded or short windows would inflate block TPS by
		// roughly n/(n-1) (more when the first block is outsized).
		if modelSpan := unscale(span); modelSpan > 0 {
			s.BlockTPS = float64(totalTxs-inWindowBlocks[0].Txs) / modelSpan.Seconds()
		}
	}

	// Per-stage commit breakdown over blocks committed inside the window.
	var vsccSt, applySt, appendSt []time.Duration
	groupsTotal, stageTxs := 0, 0
	for _, ev := range c.CommitStages() {
		if !inWin(ev.CommittedAt) {
			continue
		}
		vsccSt = append(vsccSt, unscale(ev.VSCC))
		applySt = append(applySt, unscale(ev.Apply))
		appendSt = append(appendSt, unscale(ev.Append))
		groupsTotal += ev.Groups
		stageTxs += ev.Txs
		s.MVCCAborts += ev.MVCCAborts
		s.EarlyAborts += ev.EarlyAborts
		s.WastedValidateCPU += unscale(ev.WastedValidate)
	}
	s.VSCCStage = reduceLatency(vsccSt)
	s.ApplyStage = reduceLatency(applySt)
	s.AppendStage = reduceLatency(appendSt)
	if len(vsccSt) > 0 {
		s.AvgConflictGroups = float64(groupsTotal) / float64(len(vsccSt))
	}
	if stageTxs > 0 {
		s.AbortRate = float64(s.MVCCAborts+s.EarlyAborts) / float64(stageTxs)
	}

	// Gossip-dissemination breakdown and cluster-wide commit lag.
	c.mu.Lock()
	gossips := make([]gossipSample, len(c.gossips))
	copy(gossips, c.gossips)
	commitLags := make([]commitLagSample, len(c.commitLags))
	copy(commitLags, c.commitLags)
	s.GossipDuplicates = c.gossipDups
	s.AntiEntropyBlocks = c.aePulled
	s.LeaderElections = c.elections
	s.SubscriberEvictions = c.evictions
	s.SnapshotBootstraps = c.snapshots
	s.BroadcastFailovers = c.failovers
	c.mu.Unlock()
	hopTotal := 0
	for _, g := range gossips {
		switch g.source {
		case "gossip":
			s.GossipBlocks++
			hopTotal += g.hops
		case "deliver":
			s.DeliverBlocks++
		}
	}
	if s.GossipBlocks > 0 {
		s.MeanGossipHops = float64(hopTotal) / float64(s.GossipBlocks)
	}
	var lagSamples []time.Duration
	for _, cl := range commitLags {
		if inWin(cl.at) {
			lagSamples = append(lagSamples, unscale(cl.lag))
		}
	}
	s.CommitLag = reduceLatency(lagSamples)

	// Per-peer endorsement breakdown over in-window round trips.
	c.mu.Lock()
	endorses := make([]endorseSample, len(c.endorses))
	copy(endorses, c.endorses)
	c.mu.Unlock()
	var endorseLat []time.Duration
	perPeer := make(map[string]int)
	for _, e := range endorses {
		if !inWin(e.at) {
			continue
		}
		endorseLat = append(endorseLat, unscale(e.rtt))
		perPeer[e.peer]++
	}
	s.Endorsements = len(endorseLat)
	s.EndorseLatency = reduceLatency(endorseLat)
	if len(perPeer) > 0 {
		s.EndorsesPerPeer = perPeer
		maxCount, total := 0, 0
		for _, n := range perPeer {
			total += n
			if n > maxCount {
				maxCount = n
			}
		}
		mean := float64(total) / float64(len(perPeer))
		if mean > 0 {
			s.EndorseSkew = float64(maxCount) / mean
		}
	}
	return s
}

func reduceLatency(lats []time.Duration) LatencyStats {
	if len(lats) == 0 {
		return LatencyStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	idx := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return LatencyStats{
		Count: len(lats),
		Avg:   sum / time.Duration(len(lats)),
		P50:   idx(0.50),
		P95:   idx(0.95),
		P99:   idx(0.99),
		Max:   lats[len(lats)-1],
	}
}
