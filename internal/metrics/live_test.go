package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fabricsim/internal/types"
)

// TestSummarizeConcurrentWithCallbacks hammers Summarize (and the other
// snapshot readers) while live Committed/Block/PeerCommit callbacks keep
// arriving — the mid-run scrape pattern the obs server introduces. Run
// under -race this pins the copy-under-lock discipline of Records(),
// Blocks(), CommitStages(), and the inline snapshot sections of
// Summarize.
func TestSummarizeConcurrentWithCallbacks(t *testing.T) {
	c := NewCollector()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: the transaction lifecycle
		defer wg.Done()
		base := time.Now()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := types.TxID(fmt.Sprintf("tx%d", i))
			at := base.Add(time.Duration(i) * time.Microsecond)
			c.Submitted(id, at)
			c.Attempt(id, 1+i%3)
			c.Endorsed(id, at.Add(time.Millisecond))
			c.BroadcastAcked(id, at.Add(2*time.Millisecond))
			c.Ordered(id, at.Add(3*time.Millisecond))
			code := types.ValidationValid
			if i%7 == 0 {
				code = types.ValidationMVCCConflict
			}
			c.Committed(id, at.Add(4*time.Millisecond), code)
			if i%5 == 0 {
				c.Block(BlockEvent{Number: uint64(i / 5), Channel: "ch1", CutAt: at, Txs: 5})
				c.CommitStage(CommitStageEvent{Number: uint64(i / 5), Channel: "ch1",
					Txs: 5, Groups: 5, VSCC: time.Millisecond, Apply: time.Millisecond,
					Append: time.Millisecond, CommittedAt: at.Add(4 * time.Millisecond)})
				c.PeerCommit(2*time.Millisecond, at.Add(4*time.Millisecond))
				c.GossipBlock("gossip", 2)
			}
			if i%11 == 0 {
				c.Rejected(types.TxID(fmt.Sprintf("rej%d", i)))
				c.Endorse("peer1", time.Millisecond)
			}
		}
	}()

	for g := 0; g < 4; g++ { // readers: summaries and snapshots mid-run
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sum := c.Summarize(SummaryOptions{TimeScale: 1})
				_ = sum.PhaseLatency
				for _, r := range c.Records() {
					_ = r.Attempt
				}
				_ = c.Blocks()
				_ = c.CommitStages()
				_ = c.Live()
			}
		}()
	}

	stopSampler := c.StartSampler(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stopSampler()
	close(stop)
	wg.Wait()
	if _, ok := c.LatestSample(); !ok {
		t.Fatal("sampler recorded no samples")
	}
}

func TestLiveCounters(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	c.Submitted("a", base)
	c.Submitted("b", base)
	c.Submitted("c", base)
	if live := c.Live(); live.Submitted != 3 || live.InFlight != 3 {
		t.Fatalf("after submit: %+v", live)
	}
	c.Committed("a", base.Add(time.Second), types.ValidationValid)
	c.Committed("b", base.Add(time.Second), types.ValidationMVCCConflict)
	c.Rejected("c")
	c.Block(BlockEvent{Number: 1, CutAt: base, Txs: 2})
	live := c.Live()
	if live.Committed != 1 || live.Aborted != 1 || live.Rejected != 1 {
		t.Fatalf("counters: %+v", live)
	}
	if live.InFlight != 0 {
		t.Fatalf("in-flight = %d, want 0", live.InFlight)
	}
	if live.Blocks != 1 {
		t.Fatalf("blocks = %d", live.Blocks)
	}
	// Double events must not double-count.
	c.Committed("a", base.Add(time.Second), types.ValidationValid)
	c.Rejected("c")
	if got := c.Live(); got.Committed != 1 || got.Rejected != 1 || got.InFlight != 0 {
		t.Fatalf("idempotence: %+v", got)
	}
}

func TestSamplerWindows(t *testing.T) {
	c := NewCollector()
	stop := c.StartSampler(5 * time.Millisecond)
	defer stop()
	base := time.Now()
	for i := 0; i < 40; i++ {
		id := types.TxID(fmt.Sprintf("tx%d", i))
		c.Submitted(id, base)
		code := types.ValidationValid
		if i%4 == 0 {
			code = types.ValidationMVCCConflict
		}
		c.Committed(id, base, code)
		c.PeerCommit(10*time.Millisecond, base)
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(time.Second)
	for {
		if s := c.Samples(); len(s) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no samples")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var sawTPS, sawLag, sawAbort bool
	for _, p := range c.Samples() {
		if p.TPS > 0 {
			sawTPS = true
		}
		if p.CommitLag > 0 {
			sawLag = true
		}
		if p.AbortRate > 0 {
			sawAbort = true
		}
	}
	if !sawTPS || !sawLag || !sawAbort {
		t.Fatalf("series missing signals: tps=%v lag=%v abort=%v", sawTPS, sawLag, sawAbort)
	}
}

// TestPhaseLatencyPartition checks the decomposition invariant the
// critical-path analyzer relies on: the four phases partition each
// transaction's end-to-end latency, so their averages sum to the
// end-to-end average over a uniform cohort.
func TestPhaseLatencyPartition(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	for i := 0; i < 100; i++ {
		id := types.TxID(fmt.Sprintf("tx%d", i))
		at := base.Add(time.Duration(i) * 10 * time.Millisecond)
		c.Submitted(id, at)
		c.Endorsed(id, at.Add(5*time.Millisecond))
		c.BroadcastAcked(id, at.Add(7*time.Millisecond))
		c.Ordered(id, at.Add(57*time.Millisecond))
		c.Committed(id, at.Add(80*time.Millisecond), types.ValidationValid)
	}
	sum := c.Summarize(SummaryOptions{TimeScale: 1})
	var phaseSum time.Duration
	for _, k := range PhaseOrdering() {
		st, ok := sum.PhaseLatency[k]
		if !ok {
			t.Fatalf("missing phase %q", k)
		}
		phaseSum += st.Avg
	}
	diff := phaseSum - sum.TotalLatency.Avg
	if diff < 0 {
		diff = -diff
	}
	if diff > sum.TotalLatency.Avg/20 {
		t.Fatalf("phase sum %s vs total %s (>5%%)", phaseSum, sum.TotalLatency.Avg)
	}
	if sum.PhaseLatency[PhaseOrder].P50 < 40*time.Millisecond {
		t.Fatalf("order phase p50 = %s, want ~50ms", sum.PhaseLatency[PhaseOrder].P50)
	}
}

func TestRetriedFinalAttemptLatency(t *testing.T) {
	c := NewCollector()
	base := time.Now()
	// 20 first-attempt commits at 100ms; 10 attempt-2 commits whose own
	// records span 100ms even though the logical invoke took longer.
	for i := 0; i < 20; i++ {
		id := types.TxID(fmt.Sprintf("a%d", i))
		at := base.Add(time.Duration(i) * 10 * time.Millisecond)
		c.Submitted(id, at)
		c.Attempt(id, 1)
		c.Committed(id, at.Add(100*time.Millisecond), types.ValidationValid)
	}
	for i := 0; i < 10; i++ {
		id := types.TxID(fmt.Sprintf("r%d", i))
		at := base.Add(time.Duration(i) * 20 * time.Millisecond)
		c.Submitted(id, at)
		c.Attempt(id, 2)
		c.Committed(id, at.Add(100*time.Millisecond), types.ValidationValid)
	}
	sum := c.Summarize(SummaryOptions{
		TimeScale:   1,
		WindowStart: base.Add(-time.Second),
		WindowEnd:   base.Add(10 * time.Second),
	})
	if sum.RetriedTxs != 10 {
		t.Fatalf("RetriedTxs = %d, want 10", sum.RetriedTxs)
	}
	if sum.FinalAttemptLatency.Count != 10 {
		t.Fatalf("FinalAttemptLatency.Count = %d", sum.FinalAttemptLatency.Count)
	}
	got := sum.FinalAttemptLatency.Avg
	if got < 95*time.Millisecond || got > 105*time.Millisecond {
		t.Fatalf("final-attempt avg = %s, want ~100ms", got)
	}
}
