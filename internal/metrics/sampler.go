package metrics

import (
	"time"
)

// liveCounters are monotone run totals maintained inline by the
// recording callbacks (under Collector.mu), cheap enough to read on
// every /metrics scrape or sampler tick without scanning the record map.
type liveCounters struct {
	Submitted int // distinct proposals submitted
	Committed int // committed valid
	Aborted   int // committed invalid (MVCC, early abort, policy, ...)
	Rejected  int // client-side rejections
	InFlight  int // submitted, not yet committed or rejected
	Blocks    int // blocks cut

	// lagSum/lagCount accumulate per-(peer, block) commit lag so a
	// sampler window's mean lag is a cheap delta of two prefix sums.
	lagSum   time.Duration
	lagCount int
}

// LiveStats is a point-in-time snapshot of the collector's run totals.
// All values are monotone counters except InFlight.
type LiveStats struct {
	Submitted int
	Committed int
	Aborted   int
	Rejected  int
	InFlight  int
	Blocks    int
}

// Live returns the current run totals.
func (c *Collector) Live() LiveStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return LiveStats{
		Submitted: c.live.Submitted,
		Committed: c.live.Committed,
		Aborted:   c.live.Aborted,
		Rejected:  c.live.Rejected,
		InFlight:  c.live.InFlight,
		Blocks:    c.live.Blocks,
	}
}

// SamplePoint is one windowed time-series sample: rates and gauges over
// the interval ending At. Durations and rates are wall-clock; divide by
// the run's TimeScale to convert to model time.
type SamplePoint struct {
	At time.Time `json:"at"`
	// TPS is committed-valid transactions per wall second in the window.
	TPS float64 `json:"tps"`
	// CommitLag is the mean block-cut→peer-commit lag of the window's
	// per-(peer, block) commits (0 when none committed).
	CommitLag time.Duration `json:"commit_lag_ns"`
	// AbortRate is aborted / (aborted + committed) inside the window.
	AbortRate float64 `json:"abort_rate"`
	// InFlight is the submitted-but-unresolved gauge at sample time.
	InFlight int `json:"in_flight"`
}

// samplerKeep bounds the retained time series (ring buffer).
const samplerKeep = 720

// StartSampler begins sampling the live counters every interval,
// retaining a bounded ring of SamplePoints, and returns a stop
// function. A second call replaces the running sampler. Interval <= 0
// defaults to one second.
func (c *Collector) StartSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	c.samplerMu.Lock()
	if c.samplerStop != nil {
		close(c.samplerStop)
	}
	stopCh := make(chan struct{})
	c.samplerStop = stopCh
	c.samplerMu.Unlock()

	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var prev struct {
			at        time.Time
			committed int
			aborted   int
			lagSum    time.Duration
			lagCount  int
		}
		prev.at = time.Now()
		c.mu.Lock()
		prev.committed = c.live.Committed
		prev.aborted = c.live.Aborted
		prev.lagSum = c.live.lagSum
		prev.lagCount = c.live.lagCount
		c.mu.Unlock()
		for {
			select {
			case <-stopCh:
				return
			case now := <-tick.C:
				c.mu.Lock()
				committed := c.live.Committed
				aborted := c.live.Aborted
				lagSum := c.live.lagSum
				lagCount := c.live.lagCount
				inFlight := c.live.InFlight
				c.mu.Unlock()
				p := SamplePoint{At: now, InFlight: inFlight}
				if dt := now.Sub(prev.at).Seconds(); dt > 0 {
					p.TPS = float64(committed-prev.committed) / dt
				}
				if done := (committed - prev.committed) + (aborted - prev.aborted); done > 0 {
					p.AbortRate = float64(aborted-prev.aborted) / float64(done)
				}
				if n := lagCount - prev.lagCount; n > 0 {
					p.CommitLag = (lagSum - prev.lagSum) / time.Duration(n)
				}
				prev.at = now
				prev.committed, prev.aborted = committed, aborted
				prev.lagSum, prev.lagCount = lagSum, lagCount

				c.samplerMu.Lock()
				c.samples = append(c.samples, p)
				if len(c.samples) > samplerKeep {
					c.samples = c.samples[len(c.samples)-samplerKeep:]
				}
				c.samplerMu.Unlock()
			}
		}
	}()
	var once bool
	return func() {
		c.samplerMu.Lock()
		defer c.samplerMu.Unlock()
		if !once && c.samplerStop == stopCh {
			close(stopCh)
			c.samplerStop = nil
		}
		once = true
	}
}

// Samples returns a copy of the retained time series, oldest first.
func (c *Collector) Samples() []SamplePoint {
	c.samplerMu.Lock()
	defer c.samplerMu.Unlock()
	out := make([]SamplePoint, len(c.samples))
	copy(out, c.samples)
	return out
}

// LatestSample returns the most recent sample, if any.
func (c *Collector) LatestSample() (SamplePoint, bool) {
	c.samplerMu.Lock()
	defer c.samplerMu.Unlock()
	if len(c.samples) == 0 {
		return SamplePoint{}, false
	}
	return c.samples[len(c.samples)-1], true
}
