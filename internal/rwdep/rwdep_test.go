package rwdep

import (
	"fmt"
	"reflect"
	"testing"

	"fabricsim/internal/types"
)

// depTx builds a bare transaction reading and writing the given keys in
// namespace "bench".
func depTx(id string, reads, writes []string) *types.Transaction {
	tx := &types.Transaction{
		Proposal: types.Proposal{TxID: types.TxID(id), ChaincodeID: "bench"},
	}
	for _, r := range reads {
		tx.Results.Reads = append(tx.Results.Reads, types.KVRead{Key: r})
	}
	for _, w := range writes {
		tx.Results.Writes = append(tx.Results.Writes, types.KVWrite{Key: w, Value: []byte("v")})
	}
	return tx
}

func allParticipate(n int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = true
	}
	return p
}

func groupsOf(t *testing.T, txs []*types.Transaction, participates []bool) [][]int {
	t.Helper()
	return ConflictGroups(FromTransactions(txs), participates)
}

func TestConflictGroupsDisjointKeys(t *testing.T) {
	txs := make([]*types.Transaction, 5)
	for i := range txs {
		k := fmt.Sprintf("k%d", i)
		txs[i] = depTx(fmt.Sprintf("tx%d", i), nil, []string{k})
	}
	groups := groupsOf(t, txs, allParticipate(len(txs)))
	if len(groups) != 5 {
		t.Fatalf("groups = %d, want 5 singletons", len(groups))
	}
	for i, g := range groups {
		if len(g) != 1 || g[0] != i {
			t.Errorf("group %d = %v", i, g)
		}
	}
}

func TestConflictGroupsTransitiveChain(t *testing.T) {
	// tx0 writes a, tx1 reads a writes b, tx2 reads b: one chain even
	// though tx0 and tx2 share no key directly. tx3 is independent.
	txs := []*types.Transaction{
		depTx("tx0", nil, []string{"a"}),
		depTx("tx1", []string{"a"}, []string{"b"}),
		depTx("tx2", []string{"b"}, nil),
		depTx("tx3", nil, []string{"z"}),
	}
	groups := groupsOf(t, txs, allParticipate(len(txs)))
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want chain + singleton", groups)
	}
	if len(groups[0]) != 3 || groups[0][0] != 0 || groups[0][1] != 1 || groups[0][2] != 2 {
		t.Errorf("chain group = %v, want [0 1 2] in block order", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != 3 {
		t.Errorf("singleton group = %v, want [3]", groups[1])
	}
}

func TestConflictGroupsIgnoreVSCCRejected(t *testing.T) {
	// tx1 touches both a and b but failed VSCC: it must not glue the
	// two otherwise-independent groups together.
	txs := []*types.Transaction{
		depTx("tx0", nil, []string{"a"}),
		depTx("tx1", []string{"a"}, []string{"b"}),
		depTx("tx2", nil, []string{"b"}),
	}
	participates := []bool{true, false, true}
	groups := groupsOf(t, txs, participates)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 (rejected tx must not merge them)", groups)
	}
}

func TestConflictGroupsNamespaceQualified(t *testing.T) {
	// Same key name in different chaincode namespaces never conflicts.
	a := depTx("tx0", nil, []string{"k"})
	b := depTx("tx1", nil, []string{"k"})
	b.Proposal.ChaincodeID = "other"
	groups := groupsOf(t, []*types.Transaction{a, b}, allParticipate(2))
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 (namespaces are disjoint)", groups)
	}
}

func TestConflictGroupsReadOnlyPairsStayApart(t *testing.T) {
	// Two transactions that only read the same key can never invalidate
	// each other: they must stay independent singletons.
	txs := []*types.Transaction{
		depTx("tx0", []string{"hot"}, []string{"a"}),
		depTx("tx1", []string{"hot"}, []string{"b"}),
	}
	groups := groupsOf(t, txs, allParticipate(2))
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 (read-read sharing must not group)", groups)
	}
	// But a writer of the shared key glues every reader to it, before
	// and after it in block order.
	txs = append(txs, depTx("tx2", nil, []string{"hot"}))
	groups = groupsOf(t, txs, allParticipate(3))
	if len(groups) != 1 {
		t.Fatalf("groups = %v, want 1 once a writer of the key appears", groups)
	}
}

func TestConflictGroupsWriteWriteDistinctNamespaces(t *testing.T) {
	// Write-write on equal key names under distinct namespaces: no
	// conflict, two groups.
	a := depTx("tx0", nil, []string{"k"})
	b := depTx("tx1", nil, []string{"k"})
	b.Proposal.ChaincodeID = "other"
	groups := groupsOf(t, []*types.Transaction{a, b}, allParticipate(2))
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
	// Same namespace write-write on one key: one group.
	c := depTx("tx0", nil, []string{"k"})
	d := depTx("tx1", nil, []string{"k"})
	groups = groupsOf(t, []*types.Transaction{c, d}, allParticipate(2))
	if len(groups) != 1 {
		t.Fatalf("groups = %v, want 1 (same-namespace write-write)", groups)
	}
}

func TestConflictGroupsEmptyRWSet(t *testing.T) {
	// An empty rwset forms its own singleton group; an empty input
	// yields no groups at all.
	txs := []*types.Transaction{
		depTx("tx0", nil, nil),
		depTx("tx1", nil, []string{"a"}),
	}
	groups := groupsOf(t, txs, allParticipate(2))
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 (empty rwset is a singleton)", groups)
	}
	if got := groupsOf(t, nil, nil); len(got) != 0 {
		t.Fatalf("groups of empty block = %v, want none", got)
	}
}

func TestPartitionGroupsSpreadsAndKeepsChains(t *testing.T) {
	groups := [][]int{{0, 1, 2, 3}, {4}, {5}, {6}, {7}}
	bins := PartitionGroups(groups, 2)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	// The 4-chain goes to one bin; the four singletons balance the other
	// bin first (LPT), so loads end up 4 vs 4.
	load := func(bin [][]int) int {
		n := 0
		for _, g := range bin {
			n += len(g)
		}
		return n
	}
	if load(bins[0]) != 4 || load(bins[1]) != 4 {
		t.Errorf("loads = %d, %d, want 4 and 4", load(bins[0]), load(bins[1]))
	}
	// Every group lands in exactly one bin.
	total := 0
	for _, bin := range bins {
		total += len(bin)
	}
	if total != len(groups) {
		t.Errorf("distributed %d groups, want %d", total, len(groups))
	}
}

func TestPartitionGroupsSingleBin(t *testing.T) {
	groups := [][]int{{0}, {1}, {2}}
	bins := PartitionGroups(groups, 1)
	if len(bins) != 1 || len(bins[0]) != 3 {
		t.Fatalf("bins = %v, want all groups in one bin", bins)
	}
}

func TestChainsBlindWritesAreSingletons(t *testing.T) {
	// The hot-key plateau case: N blind writes of one key share the key
	// but carry no reads, so no transaction's MVCC outcome depends on
	// another — N singleton chains (vs 1 overlap group).
	txs := make([]*types.Transaction, 4)
	for i := range txs {
		txs[i] = depTx(fmt.Sprintf("tx%d", i), nil, []string{"hot"})
	}
	rws := FromTransactions(txs)
	if chains := Chains(rws, allParticipate(4)); len(chains) != 4 {
		t.Fatalf("chains = %v, want 4 singletons", chains)
	}
	if groups := ConflictGroups(rws, allParticipate(4)); len(groups) != 1 {
		t.Fatalf("groups = %v, want 1 overlap group", groups)
	}
}

func TestChainsConnectEarlierWritersToLaterReaders(t *testing.T) {
	// tx0 writes k; tx1 reads k (depends on tx0); tx2 writes k blind
	// after tx1 — nobody reads k after tx2, so tx2 stays independent.
	txs := []*types.Transaction{
		depTx("tx0", nil, []string{"k"}),
		depTx("tx1", []string{"k"}, nil),
		depTx("tx2", nil, []string{"k"}),
	}
	chains := Chains(FromTransactions(txs), allParticipate(3))
	if len(chains) != 2 {
		t.Fatalf("chains = %v, want [[0 1] [2]]", chains)
	}
	if !reflect.DeepEqual(chains[0], []int{0, 1}) || !reflect.DeepEqual(chains[1], []int{2}) {
		t.Fatalf("chains = %v, want [[0 1] [2]]", chains)
	}
}

func TestChainsCollapseWritersThroughReader(t *testing.T) {
	// Writers w0, w1 of k are joined the moment reader r reads k after
	// both; a later writer w3 stays out until someone reads after it.
	txs := []*types.Transaction{
		depTx("w0", nil, []string{"k"}),
		depTx("w1", nil, []string{"k"}),
		depTx("r", []string{"k"}, nil),
		depTx("w3", nil, []string{"k"}),
		depTx("r2", []string{"k"}, nil),
	}
	chains := Chains(FromTransactions(txs), allParticipate(5))
	if len(chains) != 1 {
		t.Fatalf("chains = %v, want one chain (r2 reads after every writer)", chains)
	}
	if !reflect.DeepEqual(chains[0], []int{0, 1, 2, 3, 4}) {
		t.Fatalf("chain = %v, want ascending block order", chains[0])
	}
}

func TestGraphCycleDetection(t *testing.T) {
	// Two read-modify-writes of one key: a reads k and writes k, b reads
	// k and writes k — each must precede the other, a 2-cycle.
	rmw := []*types.Transaction{
		depTx("a", []string{"k"}, []string{"k"}),
		depTx("b", []string{"k"}, []string{"k"}),
	}
	if g := BuildGraph(FromTransactions(rmw), allParticipate(2)); !g.Cyclic() {
		t.Fatal("two RMWs of one key must form a cycle")
	}
	// A read-before-write pair is orderable: no cycle.
	ok := []*types.Transaction{
		depTx("w", nil, []string{"k"}),
		depTx("r", []string{"k"}, nil),
	}
	if g := BuildGraph(FromTransactions(ok), allParticipate(2)); g.Cyclic() {
		t.Fatal("writer + independent reader must be acyclic")
	}
}

func TestScheduleReordersReadsBeforeWrites(t *testing.T) {
	// FIFO dooms tx1 (reads k after tx0's write); the schedule must put
	// the reader first and save both.
	txs := []*types.Transaction{
		depTx("tx0", nil, []string{"k"}),
		depTx("tx1", []string{"k"}, nil),
	}
	order, aborted := Schedule(FromTransactions(txs), allParticipate(2))
	if len(aborted) != 0 {
		t.Fatalf("aborted = %v, want none (orderable)", aborted)
	}
	if !reflect.DeepEqual(order, []int{1, 0}) {
		t.Fatalf("order = %v, want [1 0] (read before conflicting write)", order)
	}
}

func TestScheduleAbortsCycleMembers(t *testing.T) {
	// Three RMWs of one hot key: only one can survive in any order.
	txs := []*types.Transaction{
		depTx("a", []string{"k"}, []string{"k"}),
		depTx("b", []string{"k"}, []string{"k"}),
		depTx("c", []string{"k"}, []string{"k"}),
	}
	order, aborted := Schedule(FromTransactions(txs), allParticipate(3))
	if len(order) != 1 || len(aborted) != 2 {
		t.Fatalf("order = %v aborted = %v, want one survivor", order, aborted)
	}
	// The greedy victim rule ties to the latest arrival, so the earliest
	// transaction survives.
	if order[0] != 0 {
		t.Errorf("survivor = %d, want 0 (earliest arrival)", order[0])
	}
}

func TestScheduleFIFOWhenConflictFree(t *testing.T) {
	txs := make([]*types.Transaction, 6)
	for i := range txs {
		txs[i] = depTx(fmt.Sprintf("tx%d", i), nil, []string{fmt.Sprintf("k%d", i)})
	}
	order, aborted := Schedule(FromTransactions(txs), allParticipate(6))
	if len(aborted) != 0 {
		t.Fatalf("aborted = %v, want none", aborted)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("order = %v, want FIFO for a conflict-free batch", order)
	}
}

func TestScheduleNonParticipantsKeepPlaceAndNeverAbort(t *testing.T) {
	// A transaction without rwset info (e.g. an unpeekable envelope) is
	// an isolated vertex: ordered by index, never aborted — even when
	// everything around it cycles.
	txs := []*types.Transaction{
		depTx("a", []string{"k"}, []string{"k"}),
		depTx("opaque", []string{"k"}, []string{"k"}), // masked out below
		depTx("b", []string{"k"}, []string{"k"}),
	}
	order, aborted := Schedule(FromTransactions(txs), []bool{true, false, true})
	for _, i := range aborted {
		if i == 1 {
			t.Fatal("non-participant must never abort")
		}
	}
	found := false
	for _, i := range order {
		if i == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("order = %v, must contain the opaque tx", order)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	txs := []*types.Transaction{
		depTx("a", []string{"x"}, []string{"y"}),
		depTx("b", []string{"y"}, []string{"x"}),
		depTx("c", []string{"x"}, nil),
		depTx("d", nil, []string{"z"}),
		depTx("e", []string{"z"}, []string{"z"}),
		depTx("f", []string{"z"}, []string{"z"}),
	}
	rws := FromTransactions(txs)
	order1, aborted1 := Schedule(rws, allParticipate(len(txs)))
	for i := 0; i < 10; i++ {
		order2, aborted2 := Schedule(rws, allParticipate(len(txs)))
		if !reflect.DeepEqual(order1, order2) || !reflect.DeepEqual(aborted1, aborted2) {
			t.Fatalf("run %d: (%v, %v) != (%v, %v)", i, order2, aborted2, order1, aborted1)
		}
	}
	// Sanity: a/b form a 2-cycle (one aborts), e/f RMW-cycle on z (one
	// aborts), c and d are free.
	if len(aborted1) != 2 {
		t.Fatalf("aborted = %v, want 2 cycle victims", aborted1)
	}
}

func TestScheduleSurvivorsConflictFree(t *testing.T) {
	// Property: after scheduling, no survivor reads a key an earlier
	// survivor writes (zero intra-block MVCC conflicts remain).
	txs := []*types.Transaction{
		depTx("t0", []string{"a"}, []string{"b"}),
		depTx("t1", []string{"b"}, []string{"c"}),
		depTx("t2", []string{"c"}, []string{"a"}),
		depTx("t3", nil, []string{"a"}),
		depTx("t4", []string{"a"}, nil),
		depTx("t5", []string{"b", "c"}, []string{"d"}),
	}
	rws := FromTransactions(txs)
	order, _ := Schedule(rws, allParticipate(len(txs)))
	dirty := map[string]bool{}
	for _, i := range order {
		for _, k := range rws[i].Reads {
			if dirty[k] {
				t.Fatalf("survivor %d reads %s already written earlier in the schedule %v", i, k, order)
			}
		}
		for _, k := range rws[i].Writes {
			dirty[k] = true
		}
	}
}
