// Package rwdep is the shared read-write-set dependency engine: the
// single place ordering and validation reason about which transactions
// in a batch conflict with which. It offers three views over the same
// namespace-qualified key sets:
//
//   - ConflictGroups: undirected key-overlap partitioning (union-find),
//     the committer's classic fan-out unit. Two transactions land in one
//     group when they share a key and at least one of them writes it,
//     directly or transitively; read-only sharing never groups.
//
//   - Graph / Schedule: the directed precedence graph of Fabric++'s
//     reordering pass. An edge u→v means u reads a key v writes, so u
//     must run before v for u's read to stay fresh inside the block.
//     Schedule breaks cycles by aborting transactions (greedy
//     highest-degree victim, deterministic) and emits a topological
//     order of the survivors — a block order with zero intra-block
//     read-write conflicts among them.
//
//   - Chains: block-order dependency components. Within a committed
//     block, transaction j's MVCC outcome depends only on earlier
//     transactions whose writes intersect j's reads; Chains connects
//     exactly those pairs, so each component walks serially while
//     components validate in parallel with flags identical to the
//     legacy serial walk. A block of blind writes on one hot key is one
//     overlap group but N singleton chains — the difference that breaks
//     the hot-key commit plateau once the cutter has certified the
//     block conflict-ordered.
package rwdep

import (
	"container/heap"
	"sort"

	"fabricsim/internal/types"
)

// RW is one transaction's namespace-qualified key sets. Keys are
// "namespace/key" strings so equal keys under distinct chaincodes never
// alias (Fabric's namespacing rule).
type RW struct {
	Reads  []string
	Writes []string
}

// FromRWSet qualifies one endorsed read-write set with its chaincode
// namespace.
func FromRWSet(ns string, rw *types.RWSet) RW {
	out := RW{}
	if rw == nil {
		return out
	}
	if len(rw.Reads) > 0 {
		out.Reads = make([]string, len(rw.Reads))
		for i, r := range rw.Reads {
			out.Reads[i] = ns + "/" + r.Key
		}
	}
	if len(rw.Writes) > 0 {
		out.Writes = make([]string, len(rw.Writes))
		for i, w := range rw.Writes {
			out.Writes[i] = ns + "/" + w.Key
		}
	}
	return out
}

// FromTransactions extracts every transaction's qualified key sets.
func FromTransactions(txs []*types.Transaction) []RW {
	out := make([]RW, len(txs))
	for i, tx := range txs {
		out[i] = FromRWSet(tx.Proposal.ChaincodeID, &tx.Results)
	}
	return out
}

// unionFind is a path-halving union-find over transaction indices.
type unionFind []int

func newUnionFind(n int) unionFind {
	uf := make(unionFind, n)
	for i := range uf {
		uf[i] = i
	}
	return uf
}

func (uf unionFind) find(x int) int {
	for uf[x] != x {
		uf[x] = uf[uf[x]] // path halving
		x = uf[x]
	}
	return x
}

func (uf unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		uf[rb] = ra
	}
}

// collectGroups gathers participating indices by union-find root. Each
// group lists indices in ascending block order; groups appear in order
// of their first member.
func collectGroups(uf unionFind, participates []bool) [][]int {
	byRoot := make(map[int][]int)
	roots := make([]int, 0, len(uf))
	for i := range uf {
		if participates != nil && !participates[i] {
			continue
		}
		r := uf.find(i)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, byRoot[r])
	}
	return groups
}

// ConflictGroups partitions transactions into conflict-free groups for
// a dependency-parallel commit stage. Two transactions belong to the
// same group when they share a namespace-qualified key and at least one
// of the sharers writes it, directly or transitively; transactions in
// different groups validate and apply with identical outcomes in any
// interleaving. Pure read-read sharing never groups: reads cannot
// invalidate each other, so read-only transactions on a hot key stay
// independent singletons.
//
// Only transactions with participates[i] set are grouped (nil means all
// participate): the committer masks out VSCC-rejected transactions so
// their key sets cannot glue otherwise-independent groups together. A
// participating transaction with an empty rwset forms its own singleton
// group.
func ConflictGroups(rws []RW, participates []bool) [][]int {
	uf := newUnionFind(len(rws))
	// Per key: the representative of every writer (and the readers
	// already glued to one), or the reader list while no writer has
	// appeared yet. Readers union only through a writer of their key.
	writerRep := make(map[string]int)
	pendingReaders := make(map[string][]int)
	for i, rw := range rws {
		if participates != nil && !participates[i] {
			continue
		}
		for _, k := range rw.Writes {
			if w, ok := writerRep[k]; ok {
				uf.union(w, i)
				continue
			}
			writerRep[k] = i
			for _, r := range pendingReaders[k] {
				uf.union(r, i)
			}
			delete(pendingReaders, k)
		}
		for _, k := range rw.Reads {
			if w, ok := writerRep[k]; ok {
				uf.union(w, i)
			} else {
				pendingReaders[k] = append(pendingReaders[k], i)
			}
		}
	}
	return collectGroups(uf, participates)
}

// Chains partitions transactions into block-order dependency
// components: i and j (i < j) connect exactly when a write of i
// intersects a read of j — the only relation that can change j's MVCC
// outcome. Each chain must walk serially in block order; distinct
// chains share no read-from-earlier-write relation, so walking them
// concurrently with chain-local dirty sets produces flags identical to
// the legacy block-wide serial walk. Output conventions match
// ConflictGroups (ascending indices, ordered by first member).
func Chains(rws []RW, participates []bool) [][]int {
	uf := newUnionFind(len(rws))
	// Per key: earlier writers collapse into one representative the
	// first time a later reader touches them (the reader connects them
	// all transitively); writers after that reader accumulate anew.
	collapsed := make(map[string]int)
	newWriters := make(map[string][]int)
	for j, rw := range rws {
		if participates != nil && !participates[j] {
			continue
		}
		// Reads first: a transaction's own write must not make it its
		// own predecessor.
		for _, k := range rw.Reads {
			rep, hasRep := collapsed[k]
			fresh := newWriters[k]
			if !hasRep && len(fresh) == 0 {
				continue // no earlier writer: the read cannot conflict
			}
			if hasRep {
				uf.union(rep, j)
			}
			for _, w := range fresh {
				uf.union(w, j)
			}
			collapsed[k] = uf.find(j)
			delete(newWriters, k)
		}
		for _, k := range rw.Writes {
			newWriters[k] = append(newWriters[k], j)
		}
	}
	return collectGroups(uf, participates)
}

// PartitionGroups distributes groups (or chains) across pool bins with
// a longest-processing-time greedy: groups sorted by size descending,
// each placed on the least-loaded bin. A block-wide dependency chain is
// one group and lands on a single bin — it is inherently serial — while
// the singleton groups of a low-conflict block spread evenly, so the
// modeled wall cost of the apply stage is the heaviest bin, not the
// whole block.
func PartitionGroups(groups [][]int, pool int) [][][]int {
	if pool < 1 {
		pool = 1
	}
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(groups[order[a]]) > len(groups[order[b]])
	})
	bins := make([][][]int, pool)
	loads := make([]int, pool)
	for _, gi := range order {
		best := 0
		for b := 1; b < pool; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		bins[best] = append(bins[best], groups[gi])
		loads[best] += len(groups[gi])
	}
	return bins
}

// Graph is the directed precedence graph over one batch: an edge u→v
// means u reads a namespace-qualified key v writes, so u must precede v
// in the block for u's read to stay fresh. Transactions without rwset
// information (participates[i] unset) are isolated vertices: they keep
// their place in any ordering and are never aborted.
type Graph struct {
	n    int
	succ [][]int
	pred [][]int
}

// BuildGraph constructs the precedence graph. Edges are deduplicated
// and adjacency lists are sorted ascending, so the graph — and
// everything derived from it — is a pure function of the input.
func BuildGraph(rws []RW, participates []bool) *Graph {
	n := len(rws)
	readers := make(map[string][]int) // key -> txs reading it
	writers := make(map[string][]int) // key -> txs writing it
	for i, rw := range rws {
		if participates != nil && !participates[i] {
			continue
		}
		for _, k := range rw.Reads {
			readers[k] = append(readers[k], i)
		}
		for _, k := range rw.Writes {
			writers[k] = append(writers[k], i)
		}
	}
	edges := make(map[[2]int]struct{})
	for k, rs := range readers {
		ws := writers[k]
		if len(ws) == 0 {
			continue
		}
		for _, r := range rs {
			for _, w := range ws {
				if r != w {
					edges[[2]int{r, w}] = struct{}{}
				}
			}
		}
	}
	g := &Graph{n: n, succ: make([][]int, n), pred: make([][]int, n)}
	for e := range edges {
		g.succ[e[0]] = append(g.succ[e[0]], e[1])
		g.pred[e[1]] = append(g.pred[e[1]], e[0])
	}
	for i := 0; i < n; i++ {
		sort.Ints(g.succ[i])
		sort.Ints(g.pred[i])
	}
	return g
}

// Len returns the number of vertices (transactions) in the graph.
func (g *Graph) Len() int { return g.n }

// Succ returns the successors of u: transactions that must come after u.
func (g *Graph) Succ(u int) []int { return g.succ[u] }

// Cyclic reports whether the graph contains a directed cycle — a set of
// transactions no block order can serialize (e.g. two read-modify-writes
// of the same key).
func (g *Graph) Cyclic() bool {
	return len(g.cycleVertices(nil)) > 0
}

// cycleVertices returns, sorted ascending, every vertex belonging to a
// non-trivial strongly connected component, ignoring removed vertices.
func (g *Graph) cycleVertices(removed []bool) []int {
	// Iterative Tarjan SCC.
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var cyclic []int
	next := 0

	type frame struct {
		v  int
		ei int
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited || (removed != nil && removed[root]) {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.ei < len(g.succ[f.v]) {
				w := g.succ[f.v][f.ei]
				f.ei++
				if removed != nil && removed[w] {
					continue
				}
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					cyclic = append(cyclic, comp...)
				}
			}
		}
	}
	sort.Ints(cyclic)
	return cyclic
}

// intHeap is a min-heap of transaction indices.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)         { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any           { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Schedule runs the Fabric++-style conflict-aware pass over one batch:
// it builds the precedence graph, aborts transactions on unresolvable
// read-write cycles (greedy cycle-breaking: within each cyclic
// component the highest-degree member goes first, ties to the latest
// arrival), and returns the survivors in a topological order with no
// intra-block read-write conflict left among them. The order is the
// lexicographically smallest topological order by arrival index, so
// identical input sequences always produce identical blocks, and a
// conflict-free batch comes back exactly FIFO. Aborted indices are
// returned ascending.
func Schedule(rws []RW, participates []bool) (order []int, aborted []int) {
	g := BuildGraph(rws, participates)
	removed := make([]bool, g.n)

	// Break cycles: repeatedly abort the heaviest member of each
	// remaining cyclic component until the graph is acyclic.
	for {
		cyclic := g.cycleVertices(removed)
		if len(cyclic) == 0 {
			break
		}
		inCycle := make(map[int]bool, len(cyclic))
		for _, v := range cyclic {
			inCycle[v] = true
		}
		victim, victimDeg := -1, -1
		for _, v := range cyclic {
			deg := 0
			for _, w := range g.succ[v] {
				if inCycle[w] && !removed[w] {
					deg++
				}
			}
			for _, w := range g.pred[v] {
				if inCycle[w] && !removed[w] {
					deg++
				}
			}
			// >= ties to the latest arrival: aborting the youngest
			// equally-entangled transaction preserves more of the
			// earlier-submitted work.
			if deg >= victimDeg {
				victim, victimDeg = v, deg
			}
		}
		removed[victim] = true
		aborted = append(aborted, victim)
	}

	// Kahn's algorithm with a min-index heap: deterministic, FIFO when
	// unconstrained.
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		if removed[u] {
			continue
		}
		for _, w := range g.succ[u] {
			if !removed[w] {
				indeg[w]++
			}
		}
	}
	h := &intHeap{}
	for i := 0; i < g.n; i++ {
		if !removed[i] && indeg[i] == 0 {
			heap.Push(h, i)
		}
	}
	order = make([]int, 0, g.n-len(aborted))
	for h.Len() > 0 {
		u := heap.Pop(h).(int)
		order = append(order, u)
		for _, w := range g.succ[u] {
			if removed[w] {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				heap.Push(h, w)
			}
		}
	}
	sort.Ints(aborted)
	return order, aborted
}
