package fabcrypto

import (
	"bytes"
	"testing"
)

func TestSchemes(t *testing.T) {
	for _, scheme := range []string{SchemeECDSA, SchemeHMAC} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			kp, err := GenerateKeyPair(scheme)
			if err != nil {
				t.Fatal(err)
			}
			if kp.Scheme() != scheme {
				t.Errorf("Scheme() = %s", kp.Scheme())
			}
			msg := []byte("the quick brown fox")
			sig, err := kp.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(scheme, kp.Public(), msg, sig); err != nil {
				t.Errorf("valid signature rejected: %v", err)
			}
			if err := Verify(scheme, kp.Public(), []byte("tampered"), sig); err == nil {
				t.Error("signature over different message accepted")
			}
			sig[0] ^= 0xFF
			if err := Verify(scheme, kp.Public(), msg, sig); err == nil {
				t.Error("corrupted signature accepted")
			}
		})
	}
}

func TestCrossKeyRejection(t *testing.T) {
	for _, scheme := range []string{SchemeECDSA, SchemeHMAC} {
		k1, _ := GenerateKeyPair(scheme)
		k2, _ := GenerateKeyPair(scheme)
		msg := []byte("msg")
		sig, _ := k1.Sign(msg)
		if err := Verify(scheme, k2.Public(), msg, sig); err == nil {
			t.Errorf("%s: signature verified under wrong key", scheme)
		}
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := GenerateKeyPair("rsa"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := Verify("rsa", nil, nil, nil); err == nil {
		t.Error("unknown scheme verify accepted")
	}
}

func TestMalformedInputs(t *testing.T) {
	kp, _ := GenerateECDSA()
	msg := []byte("m")
	sig, _ := kp.Sign(msg)
	if err := verifyECDSA([]byte{1, 2, 3}, msg, sig); err == nil {
		t.Error("short public key accepted")
	}
	if err := verifyECDSA(kp.Public(), msg, []byte{1, 2}); err == nil {
		t.Error("short signature accepted")
	}
	if err := verifyHMAC(nil, msg, sig); err == nil {
		t.Error("empty hmac key accepted")
	}
}

func TestDigest(t *testing.T) {
	a := Digest([]byte("ab"), []byte("c"))
	b := Digest([]byte("abc"))
	if !bytes.Equal(a, b) {
		t.Error("Digest is not plain concatenation hashing")
	}
	if len(a) != 32 {
		t.Errorf("digest length %d", len(a))
	}
}

func TestECDSAPublicKeyFormat(t *testing.T) {
	kp, _ := GenerateECDSA()
	pub := kp.Public()
	if len(pub) != 65 || pub[0] != 4 {
		t.Errorf("public key format: len=%d first=%x", len(pub), pub[0])
	}
}

func TestECDSASignatureLength(t *testing.T) {
	kp, _ := GenerateECDSA()
	for i := 0; i < 8; i++ {
		sig, err := kp.Sign([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if len(sig) != 64 {
			t.Fatalf("signature length %d, want 64", len(sig))
		}
	}
}
