// Package fabcrypto provides the signing primitives used throughout the
// reproduction (the role BCCSP plays in Hyperledger Fabric).
//
// Two schemes are provided:
//
//   - ECDSA P-256 ("ecdsa"), the algorithm Fabric actually uses. Used by
//     default in examples and correctness tests.
//   - A keyed-hash scheme ("hmac") whose verification requires the same
//     secret that produced the signature. It is NOT a real signature
//     scheme (it is symmetric) but costs ~100x less CPU, which matters
//     when benchmark sweeps push tens of thousands of transactions per
//     wall-clock second. Performance experiments inject CPU cost through
//     the calibrated cost model instead of real crypto, so the scheme
//     only needs to preserve the protocol's verification code paths.
package fabcrypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// Scheme names.
const (
	SchemeECDSA = "ecdsa"
	SchemeHMAC  = "hmac"
)

// Errors returned by the package.
var (
	ErrUnknownScheme = errors.New("fabcrypto: unknown scheme")
	ErrBadKey        = errors.New("fabcrypto: malformed key")
	ErrBadSignature  = errors.New("fabcrypto: malformed signature")
)

// KeyPair can sign messages and expose a serialized public key that
// Verify accepts.
type KeyPair interface {
	// Scheme names the signature scheme ("ecdsa" or "hmac").
	Scheme() string
	// Sign returns a signature over the SHA-256 digest of msg.
	Sign(msg []byte) ([]byte, error)
	// Public returns the serialized public key.
	Public() []byte
}

// GenerateKeyPair creates a key pair for the named scheme.
func GenerateKeyPair(scheme string) (KeyPair, error) {
	switch scheme {
	case SchemeECDSA:
		return GenerateECDSA()
	case SchemeHMAC:
		return GenerateHMAC()
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}
}

// Verify checks sig over msg against the serialized public key for the
// named scheme. It returns nil when the signature is valid.
func Verify(scheme string, pub, msg, sig []byte) error {
	switch scheme {
	case SchemeECDSA:
		return verifyECDSA(pub, msg, sig)
	case SchemeHMAC:
		return verifyHMAC(pub, msg, sig)
	default:
		return fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}
}

// Digest returns the SHA-256 digest of the concatenation of its inputs.
func Digest(parts ...[]byte) []byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

// --- ECDSA P-256 ---

// ECDSAKeyPair signs with ECDSA over P-256, as Fabric does.
type ECDSAKeyPair struct {
	priv *ecdsa.PrivateKey
}

var _ KeyPair = (*ECDSAKeyPair)(nil)

// GenerateECDSA creates a fresh P-256 key pair.
func GenerateECDSA() (*ECDSAKeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ecdsa key: %w", err)
	}
	return &ECDSAKeyPair{priv: priv}, nil
}

// Scheme returns "ecdsa".
func (k *ECDSAKeyPair) Scheme() string { return SchemeECDSA }

// Sign signs the SHA-256 digest of msg. The signature is r||s with each
// component left-padded to 32 bytes.
func (k *ECDSAKeyPair) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	r, s, err := ecdsa.Sign(rand.Reader, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("ecdsa sign: %w", err)
	}
	sig := make([]byte, 64)
	r.FillBytes(sig[:32])
	s.FillBytes(sig[32:])
	return sig, nil
}

// Public returns the uncompressed point encoding (0x04 || X || Y).
func (k *ECDSAKeyPair) Public() []byte {
	pub := k.priv.PublicKey
	out := make([]byte, 65)
	out[0] = 4
	pub.X.FillBytes(out[1:33])
	pub.Y.FillBytes(out[33:])
	return out
}

func verifyECDSA(pub, msg, sig []byte) error {
	if len(pub) != 65 || pub[0] != 4 {
		return ErrBadKey
	}
	if len(sig) != 64 {
		return ErrBadSignature
	}
	x := new(big.Int).SetBytes(pub[1:33])
	y := new(big.Int).SetBytes(pub[33:])
	pk := ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	digest := sha256.Sum256(msg)
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:])
	if !ecdsa.Verify(&pk, digest[:], r, s) {
		return errors.New("fabcrypto: ecdsa verification failed")
	}
	return nil
}

// --- HMAC (simulation-grade) ---

// HMACKeyPair is the fast symmetric scheme: the "public key" is the
// HMAC secret itself. Suitable only for performance simulation.
type HMACKeyPair struct {
	key []byte
}

var _ KeyPair = (*HMACKeyPair)(nil)

// GenerateHMAC creates a fresh 32-byte HMAC key.
func GenerateHMAC() (*HMACKeyPair, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("generate hmac key: %w", err)
	}
	return &HMACKeyPair{key: key}, nil
}

// Scheme returns "hmac".
func (k *HMACKeyPair) Scheme() string { return SchemeHMAC }

// Sign returns HMAC-SHA256(key, msg).
func (k *HMACKeyPair) Sign(msg []byte) ([]byte, error) {
	m := hmac.New(sha256.New, k.key)
	m.Write(msg)
	return m.Sum(nil), nil
}

// Public returns the HMAC key (see type comment).
func (k *HMACKeyPair) Public() []byte {
	out := make([]byte, len(k.key))
	copy(out, k.key)
	return out
}

func verifyHMAC(pub, msg, sig []byte) error {
	if len(pub) == 0 {
		return ErrBadKey
	}
	m := hmac.New(sha256.New, pub)
	m.Write(msg)
	if !hmac.Equal(m.Sum(nil), sig) {
		return errors.New("fabcrypto: hmac verification failed")
	}
	return nil
}
