package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fabricsim/internal/metrics"
	"fabricsim/internal/trace"
	"fabricsim/internal/types"
)

// startTestServer boots a server on a loopback ephemeral port and tears
// it down with the test.
func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := Start(cfg)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(s.Stop)
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	col := metrics.NewCollector()
	now := time.Now()
	for i := 0; i < 5; i++ {
		id := types.TxID(fmt.Sprintf("tx%d", i))
		col.Submitted(id, now)
		col.Committed(id, now.Add(10*time.Millisecond), types.ValidationValid)
	}
	stop := col.StartSampler(5 * time.Millisecond)
	defer stop()
	time.Sleep(20 * time.Millisecond)

	s := startTestServer(t, Config{Collector: col, TimeScale: 0.5})
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"fabricsim_submitted_total 5",
		"fabricsim_committed_total 5",
		"fabricsim_inflight 0",
		"# TYPE fabricsim_tps gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsNoCollector(t *testing.T) {
	s := startTestServer(t, Config{})
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "no collector") {
		t.Errorf("expected placeholder, got %q", body)
	}
}

func TestSetCollectorSwap(t *testing.T) {
	s := startTestServer(t, Config{})
	col := metrics.NewCollector()
	col.Submitted(types.TxID("txA"), time.Now())
	s.SetCollector(col)
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, "fabricsim_submitted_total 1") {
		t.Errorf("swapped collector not served:\n%s", body)
	}
}

func TestTraceEndpoints(t *testing.T) {
	tr := trace.New(0)
	id := tr.Mint("tx1")
	base := time.Now()
	tr.Record(id, trace.SpanGatewayPropose, "gw0", base, base.Add(time.Millisecond))
	tr.Record(id, trace.SpanGatewayEndorse, "gw0", base.Add(time.Millisecond), base.Add(3*time.Millisecond))
	tr.Record(id, trace.SpanGatewaySubmit, "gw0", base.Add(3*time.Millisecond), base.Add(4*time.Millisecond))
	tr.Record(id, trace.SpanGatewayCommitWait, "gw0", base.Add(4*time.Millisecond), base.Add(9*time.Millisecond))
	tr.Bind("tx1-retry", id)

	s := startTestServer(t, Config{Tracer: tr})

	code, body := get(t, "http://"+s.Addr()+"/traces")
	if code != http.StatusOK || !strings.Contains(body, "tx1") {
		t.Fatalf("index: status %d body %q", code, body)
	}

	// Fetch by trace ID and by a bound retry alias; both resolve.
	for _, key := range []string{"tx1", "tx1-retry"} {
		code, body = get(t, "http://"+s.Addr()+"/traces/"+key)
		if code != http.StatusOK {
			t.Fatalf("trace %s: status %d body %q", key, code, body)
		}
		var dump struct {
			TraceID string       `json:"trace_id"`
			Spans   []trace.Span `json:"spans"`
			CP      *struct {
				Dominant string `json:"dominant"`
			} `json:"critical_path"`
		}
		if err := json.Unmarshal([]byte(body), &dump); err != nil {
			t.Fatalf("trace %s: bad json: %v", key, err)
		}
		if dump.TraceID != "tx1" || len(dump.Spans) != 4 {
			t.Errorf("trace %s: got id=%q spans=%d", key, dump.TraceID, len(dump.Spans))
		}
		if dump.CP == nil || dump.CP.Dominant != trace.SpanGatewayCommitWait {
			t.Errorf("trace %s: critical path missing or wrong dominant: %+v", key, dump.CP)
		}
	}

	code, _ = get(t, "http://"+s.Addr()+"/traces/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
}

func TestHealthz(t *testing.T) {
	heights := map[string]map[string]uint64{
		"peer0": {"ch1": 10, "ch2": 4},
		"peer1": {"ch1": 7, "ch2": 4},
	}
	s := startTestServer(t, Config{Health: func() map[string]map[string]uint64 { return heights }})
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var reply struct {
		Status string `json:"status"`
		MaxLag uint64 `json:"max_lag"`
		Peers  map[string]struct {
			Heights map[string]uint64 `json:"heights"`
			Lag     uint64            `json:"lag"`
		} `json:"peers"`
	}
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	if reply.Status != "ok" || reply.MaxLag != 3 {
		t.Errorf("status=%q max_lag=%d, want ok/3", reply.Status, reply.MaxLag)
	}
	if reply.Peers["peer1"].Lag != 3 || reply.Peers["peer0"].Lag != 0 {
		t.Errorf("peer lags wrong: %+v", reply.Peers)
	}
}

func TestPprofMounted(t *testing.T) {
	s := startTestServer(t, Config{})
	code, body := get(t, "http://"+s.Addr()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
}
