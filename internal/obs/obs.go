// Package obs serves the live observability surface of a running
// network over HTTP: Prometheus-text metrics scraped from the
// collector's live counters and windowed samples, per-transaction span
// dumps with critical-path decomposition, a per-peer height/lag health
// check, and the stdlib pprof profiling endpoints. Everything is
// read-only and safe to scrape mid-run; the server holds no state of
// its own beyond the wiring handed to Start.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"fabricsim/internal/metrics"
	"fabricsim/internal/trace"
)

// Config wires the server to a run's instrumentation. Every field but
// Addr is optional: a missing collector serves empty metrics, a missing
// tracer serves an empty trace index, a missing Health func reports
// only liveness.
type Config struct {
	// Addr is the listen address (":6060"; use "127.0.0.1:0" in tests).
	Addr string
	// Collector supplies live counters and samples; swappable per run
	// via SetCollector.
	Collector *metrics.Collector
	// Tracer supplies span dumps for /traces.
	Tracer *trace.Tracer
	// TimeScale converts wall-clock readings to model time (rates are
	// multiplied, durations divided). 0 means 1 (wall == model).
	TimeScale float64
	// Health reports per-peer committed heights by channel
	// (fabnet.Network.Heights); nil omits the peer section.
	Health func() map[string]map[string]uint64
}

// Server is a running observability endpoint.
type Server struct {
	cfg  Config
	ln   net.Listener
	srv  *http.Server
	once sync.Once

	mu  sync.Mutex
	col *metrics.Collector
}

// Start listens on cfg.Addr and serves until Stop.
func Start(cfg Config) (*Server, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln, col: cfg.Collector}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraceIndex)
	mux.HandleFunc("/traces/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" for tests).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetCollector swaps the collector the metrics endpoint reads — the
// bench harness builds a fresh collector per experiment point and
// re-points the long-lived server at it.
func (s *Server) SetCollector(c *metrics.Collector) {
	s.mu.Lock()
	s.col = c
	s.mu.Unlock()
}

// collector returns the current collector (may be nil).
func (s *Server) collector() *metrics.Collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col
}

// Stop shuts the server down immediately.
func (s *Server) Stop() {
	s.once.Do(func() { _ = s.srv.Close() })
}

// handleMetrics serves the Prometheus text exposition: run-total
// counters plus the latest sampler window's rates, all in model time.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	col := s.collector()
	if col == nil {
		fmt.Fprintln(w, "# no collector attached")
		return
	}
	ts := s.cfg.TimeScale
	live := col.Live()
	var b strings.Builder
	counter := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("fabricsim_submitted_total", "Distinct proposals submitted.", live.Submitted)
	counter("fabricsim_committed_total", "Transactions committed valid.", live.Committed)
	counter("fabricsim_aborted_total", "Transactions committed invalid (MVCC, early abort, policy).", live.Aborted)
	counter("fabricsim_rejected_total", "Client-side rejections (ordering timeout).", live.Rejected)
	counter("fabricsim_blocks_total", "Blocks cut by the observed orderer.", live.Blocks)
	gauge("fabricsim_inflight", "Submitted but unresolved transactions.", float64(live.InFlight))
	if p, ok := col.LatestSample(); ok {
		// Sampler readings are wall-clock; convert to model time so a
		// scaled-down run reports the rates the model simulates.
		gauge("fabricsim_tps", "Committed transactions per model second (latest window).", p.TPS*ts)
		gauge("fabricsim_commit_lag_seconds", "Mean block-cut to peer-commit lag in model seconds (latest window).",
			p.CommitLag.Seconds()/ts)
		gauge("fabricsim_abort_rate", "Aborted fraction of resolved transactions (latest window).", p.AbortRate)
	}
	_, _ = w.Write([]byte(b.String()))
}

// traceDump is the /traces/<txid> reply.
type traceDump struct {
	TraceID      trace.TraceID             `json:"trace_id"`
	Spans        []trace.Span              `json:"spans"`
	CriticalPath *trace.CriticalPathResult `json:"critical_path,omitempty"`
}

// handleTraceIndex lists the retained trace IDs.
func (s *Server) handleTraceIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ids := s.cfg.Tracer.TraceIDs() // nil-safe
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	_ = json.NewEncoder(w).Encode(map[string]any{"count": len(ids), "traces": ids})
}

// handleTrace serves one transaction's span dump and critical path. The
// path element may be a TraceID or any retry attempt's TxID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/traces/")
	if key == "" {
		s.handleTraceIndex(w, r)
		return
	}
	tr := s.cfg.Tracer
	id := trace.TraceID(key)
	if resolved, ok := tr.Lookup(key); ok {
		id = resolved
	}
	spans := tr.Spans(id)
	if len(spans) == 0 {
		http.Error(w, fmt.Sprintf("no trace for %q", key), http.StatusNotFound)
		return
	}
	dump := traceDump{TraceID: id, Spans: spans}
	if cp, ok := tr.CriticalPath(id); ok {
		dump.CriticalPath = &cp
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(dump)
}

// peerHealth is one peer's row in the /healthz reply.
type peerHealth struct {
	Heights map[string]uint64 `json:"heights"`
	// Lag is the peer's worst height deficit against the channel maxima.
	Lag uint64 `json:"lag"`
}

// handleHealth reports liveness plus per-peer committed heights and the
// lag behind each channel's front-runner.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	reply := map[string]any{"status": "ok", "at": time.Now().Format(time.RFC3339Nano)}
	if s.cfg.Health != nil {
		heights := s.cfg.Health()
		tips := make(map[string]uint64)
		for _, chans := range heights {
			for ch, h := range chans {
				if h > tips[ch] {
					tips[ch] = h
				}
			}
		}
		peers := make(map[string]peerHealth, len(heights))
		var maxLag uint64
		for id, chans := range heights {
			var lag uint64
			for ch, h := range chans {
				if d := tips[ch] - h; d > lag {
					lag = d
				}
			}
			if lag > maxLag {
				maxLag = lag
			}
			peers[id] = peerHealth{Heights: chans, Lag: lag}
		}
		reply["peers"] = peers
		reply["max_lag"] = maxLag
	}
	_ = json.NewEncoder(w).Encode(reply)
}
