package trace

import (
	"fmt"
	"strings"
	"time"
)

// Phase is one segment of a transaction's critical-path decomposition.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	// Fraction of the end-to-end total this phase accounts for.
	Fraction float64 `json:"fraction"`
}

// CriticalPathResult decomposes one committed transaction's end-to-end
// latency into per-phase wall time.
type CriticalPathResult struct {
	TraceID TraceID `json:"trace_id"`
	// Total is the end-to-end extent: first gateway-phase span start to
	// last gateway-phase span end.
	Total time.Duration `json:"total_ns"`
	// Phases are the gateway boundary phases in lifecycle order. They
	// partition [start, end] of the logical submission, so they sum to
	// Total up to inter-attempt backoff gaps (reported as the synthetic
	// "retry-backoff" phase).
	Phases []Phase `json:"phases"`
	// Dominant names the phase with the largest share.
	Dominant string `json:"dominant"`
}

// phaseOrder is the lifecycle order of the boundary phases.
var phaseOrder = []string{
	SpanGatewayPropose,
	SpanGatewayEndorse,
	SpanGatewaySubmit,
	SpanGatewayCommitWait,
}

// CriticalPath decomposes the trace's end-to-end latency into per-phase
// wall time using the gateway boundary spans (which partition the
// transaction's lifetime by construction) and flags the dominant phase.
// Time spent between retry attempts — backoff plus abandoned-attempt
// work — surfaces as the synthetic "retry-backoff" phase so the phases
// always sum to Total exactly. ok is false when the trace is unknown or
// carries no boundary spans (e.g. the transaction never completed its
// gateway lifecycle).
func (t *Tracer) CriticalPath(id TraceID) (CriticalPathResult, bool) {
	spans := t.Spans(id)
	if len(spans) == 0 {
		return CriticalPathResult{}, false
	}
	byPhase := make(map[string]time.Duration, len(phaseOrder))
	var first, last time.Time
	seen := false
	for _, sp := range spans {
		if !isBoundary(sp.Name) {
			continue
		}
		byPhase[sp.Name] += sp.Duration()
		if !seen || sp.Start.Before(first) {
			first = sp.Start
		}
		if !seen || sp.End.After(last) {
			last = sp.End
		}
		seen = true
	}
	if !seen {
		return CriticalPathResult{}, false
	}
	res := CriticalPathResult{TraceID: id, Total: last.Sub(first)}
	var accounted time.Duration
	for _, name := range phaseOrder {
		d, ok := byPhase[name]
		if !ok {
			continue
		}
		accounted += d
		res.Phases = append(res.Phases, Phase{Name: name, Duration: d})
	}
	if gap := res.Total - accounted; gap > 0 {
		res.Phases = append(res.Phases, Phase{Name: "retry-backoff", Duration: gap})
	}
	var dom time.Duration
	for i := range res.Phases {
		if res.Total > 0 {
			res.Phases[i].Fraction = float64(res.Phases[i].Duration) / float64(res.Total)
		}
		if res.Phases[i].Duration > dom {
			dom = res.Phases[i].Duration
			res.Dominant = res.Phases[i].Name
		}
	}
	return res, true
}

func isBoundary(name string) bool {
	for _, p := range phaseOrder {
		if p == name {
			return true
		}
	}
	return false
}

// String renders the decomposition as a one-line breakdown.
func (r CriticalPathResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%s", r.Total.Round(time.Microsecond))
	for _, p := range r.Phases {
		mark := ""
		if p.Name == r.Dominant {
			mark = "*"
		}
		fmt.Fprintf(&b, " %s%s=%s(%.0f%%)", mark, p.Name,
			p.Duration.Round(time.Microsecond), p.Fraction*100)
	}
	return b.String()
}

// Tree renders the full span list as an indented tree: boundary phases
// at the top level, detail spans indented under the phase whose time
// range contains them (by start time), orphans at the end. It is a
// diagnostic rendering for examples and the /traces endpoint, not a
// parse target.
func Tree(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	var b strings.Builder
	base := spans[0].Start
	for _, sp := range spans {
		if sp.Start.Before(base) {
			base = sp.Start
		}
	}
	line := func(indent string, sp Span) {
		fmt.Fprintf(&b, "%s%-22s %-8s +%-10s %s", indent, sp.Name, sp.Node,
			sp.Start.Sub(base).Round(time.Microsecond),
			sp.Duration().Round(time.Microsecond))
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			// Stable attr order keeps the rendering deterministic.
			for i := 0; i < len(keys); i++ {
				for j := i + 1; j < len(keys); j++ {
					if keys[j] < keys[i] {
						keys[i], keys[j] = keys[j], keys[i]
					}
				}
			}
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, k+"="+sp.Attrs[k])
			}
			fmt.Fprintf(&b, "  {%s}", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}
	used := make([]bool, len(spans))
	for _, phase := range phaseOrder {
		for i, sp := range spans {
			if sp.Name != phase {
				continue
			}
			used[i] = true
			line("", sp)
			for j, d := range spans {
				if used[j] || isBoundary(d.Name) {
					continue
				}
				if !d.Start.Before(sp.Start) && !d.Start.After(sp.End) {
					used[j] = true
					line("  ", d)
				}
			}
		}
	}
	for i, sp := range spans {
		if !used[i] {
			line("", sp)
		}
	}
	return b.String()
}
