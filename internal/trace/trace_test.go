package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Mint("tx1")
	if id != "" {
		t.Fatalf("nil tracer minted %q", id)
	}
	tr.Record("x", SpanGatewayPropose, "client1", time.Now(), time.Now())
	tr.Event("x", SpanGossipOrigin, "peer1", time.Now())
	tr.Bind("tx2", "x")
	tr.BlockOrigin("ch1", 3, "gossip", 2)
	if _, _, ok := tr.OriginOf("ch1", 3); ok {
		t.Fatal("nil tracer returned an origin")
	}
	if got := tr.Spans("x"); got != nil {
		t.Fatalf("nil tracer returned spans %v", got)
	}
	if _, ok := tr.Lookup("tx1"); ok {
		t.Fatal("nil tracer resolved a lookup")
	}
	if _, ok := tr.CriticalPath("x"); ok {
		t.Fatal("nil tracer produced a critical path")
	}
	if tr.Len() != 0 || tr.TraceIDs() != nil {
		t.Fatal("nil tracer retains traces")
	}
}

func TestMintBindLookup(t *testing.T) {
	tr := New(0)
	id := tr.Mint("tx-attempt1")
	if id == "" {
		t.Fatal("empty trace id")
	}
	tr.Bind("tx-attempt2", id)
	for _, txID := range []string{"tx-attempt1", "tx-attempt2"} {
		got, ok := tr.Lookup(txID)
		if !ok || got != id {
			t.Fatalf("Lookup(%s) = %q, %v; want %q", txID, got, ok, id)
		}
	}
}

func TestRecordAndSpansSorted(t *testing.T) {
	tr := New(0)
	id := tr.Mint("tx1")
	base := time.Unix(1000, 0)
	tr.Record(id, SpanGatewayEndorse, "client1", base.Add(10*time.Millisecond), base.Add(30*time.Millisecond))
	tr.Record(id, SpanGatewayPropose, "client1", base, base.Add(10*time.Millisecond), "attempt", "1")
	got := tr.Spans(id)
	if len(got) != 2 {
		t.Fatalf("got %d spans, want 2", len(got))
	}
	if got[0].Name != SpanGatewayPropose || got[1].Name != SpanGatewayEndorse {
		t.Fatalf("spans not sorted by start: %v %v", got[0].Name, got[1].Name)
	}
	if got[0].Attrs["attempt"] != "1" {
		t.Fatalf("attrs lost: %v", got[0].Attrs)
	}
	// The returned slice is a copy.
	got[0].Name = "mutated"
	if tr.Spans(id)[0].Name != SpanGatewayPropose {
		t.Fatal("Spans returned shared storage")
	}
}

func TestEvictionBound(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		id := tr.Mint(fmt.Sprintf("tx%d", i))
		tr.Record(id, SpanGatewayPropose, "c", time.Unix(int64(i), 0), time.Unix(int64(i), 1))
	}
	if tr.Len() != 4 {
		t.Fatalf("retained %d traces, want 4", tr.Len())
	}
	ids := tr.TraceIDs()
	if ids[0] != "tx6" || ids[len(ids)-1] != "tx9" {
		t.Fatalf("wrong survivors: %v", ids)
	}
	if got := tr.Spans("tx0"); got != nil {
		t.Fatalf("evicted trace still has spans: %v", got)
	}
}

func TestSpanCap(t *testing.T) {
	tr := New(0)
	id := tr.Mint("tx1")
	at := time.Unix(0, 0)
	for i := 0; i < maxSpansPerTrace+50; i++ {
		tr.Record(id, SpanGossipOrigin, "p", at, at)
	}
	if n := len(tr.Spans(id)); n != maxSpansPerTrace {
		t.Fatalf("span cap not enforced: %d", n)
	}
}

func TestBlockOriginFirstWriteWins(t *testing.T) {
	tr := New(0)
	tr.BlockOrigin("ch1", 7, SourceLabelGossip, 2)
	tr.BlockOrigin("ch1", 7, "antientropy", 0)
	src, hops, ok := tr.OriginOf("ch1", 7)
	if !ok || src != SourceLabelGossip || hops != 2 {
		t.Fatalf("OriginOf = %q,%d,%v", src, hops, ok)
	}
	if _, _, ok := tr.OriginOf("ch2", 7); ok {
		t.Fatal("origin leaked across channels")
	}
}

// TestCriticalPathExactPartition is the acceptance-criterion unit test:
// the boundary phases must sum to within 5% of the measured end-to-end
// latency. By construction they partition it, so the error is zero.
func TestCriticalPathExactPartition(t *testing.T) {
	tr := New(0)
	id := tr.Mint("tx1")
	base := time.Unix(2000, 0)
	t0 := base
	t1 := base.Add(3 * time.Millisecond)   // propose done
	t2 := base.Add(48 * time.Millisecond)  // endorse done
	t3 := base.Add(61 * time.Millisecond)  // broadcast acked
	t4 := base.Add(460 * time.Millisecond) // committed
	tr.Record(id, SpanGatewayPropose, "client1", t0, t1)
	tr.Record(id, SpanGatewayEndorse, "client1", t1, t2)
	tr.Record(id, SpanGatewaySubmit, "client1", t2, t3)
	tr.Record(id, SpanGatewayCommitWait, "client1", t3, t4)
	// Detail spans must not perturb the decomposition.
	tr.Record(id, SpanEndorserExecute, "peer1", t1.Add(time.Millisecond), t2.Add(-time.Millisecond))
	tr.Record(id, SpanCommitVSCC, "peer1", t3.Add(100*time.Millisecond), t3.Add(150*time.Millisecond))

	cp, ok := tr.CriticalPath(id)
	if !ok {
		t.Fatal("no critical path")
	}
	endToEnd := t4.Sub(t0)
	if cp.Total != endToEnd {
		t.Fatalf("Total = %s, want %s", cp.Total, endToEnd)
	}
	var sum time.Duration
	for _, p := range cp.Phases {
		sum += p.Duration
	}
	diff := float64(sum-endToEnd) / float64(endToEnd)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Fatalf("phase sum %s differs from end-to-end %s by %.1f%%", sum, endToEnd, diff*100)
	}
	if cp.Dominant != SpanGatewayCommitWait {
		t.Fatalf("dominant = %s, want %s", cp.Dominant, SpanGatewayCommitWait)
	}
}

func TestCriticalPathRetryBackoffGap(t *testing.T) {
	tr := New(0)
	id := tr.Mint("tx1")
	base := time.Unix(3000, 0)
	// Attempt 1: propose+endorse, then the attempt aborts; attempt 2
	// starts 20ms later (backoff) and commits.
	tr.Record(id, SpanGatewayPropose, "c", base, base.Add(2*time.Millisecond), "attempt", "1")
	tr.Record(id, SpanGatewayEndorse, "c", base.Add(2*time.Millisecond), base.Add(10*time.Millisecond), "attempt", "1")
	a2 := base.Add(30 * time.Millisecond)
	tr.Record(id, SpanGatewayPropose, "c", a2, a2.Add(2*time.Millisecond), "attempt", "2")
	tr.Record(id, SpanGatewayEndorse, "c", a2.Add(2*time.Millisecond), a2.Add(10*time.Millisecond), "attempt", "2")
	tr.Record(id, SpanGatewaySubmit, "c", a2.Add(10*time.Millisecond), a2.Add(12*time.Millisecond), "attempt", "2")
	tr.Record(id, SpanGatewayCommitWait, "c", a2.Add(12*time.Millisecond), a2.Add(50*time.Millisecond), "attempt", "2")

	cp, ok := tr.CriticalPath(id)
	if !ok {
		t.Fatal("no critical path")
	}
	var backoff time.Duration
	var sum time.Duration
	for _, p := range cp.Phases {
		sum += p.Duration
		if p.Name == "retry-backoff" {
			backoff = p.Duration
		}
	}
	if sum != cp.Total {
		t.Fatalf("phases sum %s != total %s", sum, cp.Total)
	}
	if backoff != 20*time.Millisecond {
		t.Fatalf("retry-backoff = %s, want 20ms", backoff)
	}
}

func TestCriticalPathUnknownOrDetailOnly(t *testing.T) {
	tr := New(0)
	if _, ok := tr.CriticalPath("missing"); ok {
		t.Fatal("critical path for unknown trace")
	}
	id := tr.Mint("tx1")
	tr.Record(id, SpanCommitApply, "peer1", time.Unix(0, 0), time.Unix(1, 0))
	if _, ok := tr.CriticalPath(id); ok {
		t.Fatal("critical path without boundary spans")
	}
}

func TestTreeRendering(t *testing.T) {
	tr := New(0)
	id := tr.Mint("tx1")
	base := time.Unix(4000, 0)
	tr.Record(id, SpanGatewayEndorse, "client1", base, base.Add(40*time.Millisecond))
	tr.Record(id, SpanEndorserExecute, "peer2", base.Add(5*time.Millisecond), base.Add(35*time.Millisecond), "queue_wait", "1ms")
	out := Tree(tr.Spans(id))
	if !strings.Contains(out, SpanGatewayEndorse) {
		t.Fatalf("tree missing boundary span:\n%s", out)
	}
	if !strings.Contains(out, "  "+SpanEndorserExecute) {
		t.Fatalf("detail span not nested:\n%s", out)
	}
	if !strings.Contains(out, "queue_wait=1ms") {
		t.Fatalf("attrs not rendered:\n%s", out)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.Mint(fmt.Sprintf("g%d-tx%d", g, i))
				tr.Record(id, SpanGatewayPropose, "c", time.Now(), time.Now())
				tr.BlockOrigin("ch1", uint64(i), SourceLabelGossip, g)
				tr.Spans(id)
				tr.CriticalPath(id)
				_, _, _ = tr.OriginOf("ch1", uint64(i))
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("retained %d traces, want 64", tr.Len())
	}
}
