// Package trace is the low-overhead span subsystem threaded through the
// transaction lifecycle: the gateway mints one TraceID per logical
// submission, the ID rides the proposal/envelope wire format, and every
// layer (gateway stages, endorser execute, orderer ingress and cutter
// residency, Raft propose→commit, gossip origin, committer stages)
// records named spans against it. A nil *Tracer is a valid no-op, so
// instrumented call sites pay one pointer comparison when tracing is
// off — the default everywhere.
//
// The design follows Dapper (Sigelman et al., 2010) in spirit but not
// in scope: spans are flat (correlated by TraceID and ordered by start
// time, no parent pointers), retention is a bounded in-memory ring, and
// the only consumers are the in-process CriticalPath analyzer and the
// obs HTTP server's /traces endpoint.
package trace

import (
	"sort"
	"sync"
	"time"
)

// TraceID identifies one logical transaction submission end to end. A
// retried transaction keeps its TraceID across attempts (each attempt's
// fresh TxID is bound to the same trace), so one trace shows the whole
// client-visible story including backoff gaps.
type TraceID string

// Span is one named, timed segment of a trace recorded by one node.
// Start == End marks a point event.
type Span struct {
	TraceID TraceID           `json:"trace_id"`
	Name    string            `json:"name"`
	Node    string            `json:"node"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Span names recorded by the instrumented layers. The gateway phase
// spans (propose/endorse/submit/commit-wait) partition the transaction's
// end-to-end wall time exactly — CriticalPath sums them back to the
// measured total. Everything else is detail nested inside those phases.
const (
	SpanGatewayPropose    = "gateway.propose"     // client CPU + proposal build
	SpanGatewayEndorse    = "gateway.endorse"     // endorsement round trip
	SpanGatewaySubmit     = "gateway.submit"      // broadcast until orderer ack
	SpanGatewayCommitWait = "gateway.commit-wait" // ack → commit event
	SpanEndorserExecute   = "endorser.execute"    // peer-side simulate + sign
	SpanOrdererIngress    = "orderer.ingress"     // broadcast handling → consenter accept
	SpanOrdererResidency  = "orderer.residency"   // cutter enqueue → batch cut
	SpanRaftConsensus     = "raft.consensus"      // leader propose → entry applied
	SpanCommitVSCC        = "commit.vscc"         // policy validation stage
	SpanCommitApply       = "commit.apply"        // MVCC + state apply stage
	SpanCommitAppend      = "commit.append"       // ledger append + events
	SpanGossipOrigin      = "gossip.origin"       // block arrival at the trace peer
)

// Dissemination-origin labels, mirroring the gossip layer's source
// strings (kept as plain strings so trace does not import gossip).
const (
	SourceLabelDeliver     = "deliver"
	SourceLabelGossip      = "gossip"
	SourceLabelAntiEntropy = "antientropy"
)

// maxTracesDefault bounds retained traces; the oldest trace is evicted
// when a new one would exceed it.
const maxTracesDefault = 4096

// maxSpansPerTrace bounds one trace's span list against pathological
// recording loops.
const maxSpansPerTrace = 256

// Tracer collects spans keyed by TraceID with bounded retention. All
// methods are safe for concurrent use and safe on a nil receiver (no-op,
// which is how the whole stack runs with tracing disabled).
type Tracer struct {
	mu     sync.Mutex
	max    int
	traces map[TraceID]*traceEntry
	order  []TraceID // insertion order, for eviction
	seq    uint64    // TraceID mint counter
	alias  map[string]TraceID

	originMu sync.Mutex
	origins  map[originKey]origin
}

type traceEntry struct {
	spans   []Span
	dropped int
}

type originKey struct {
	channel string
	num     uint64
}

type origin struct {
	source string
	hops   int
}

// New returns a Tracer retaining up to maxTraces traces (0 = default).
func New(maxTraces int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = maxTracesDefault
	}
	return &Tracer{
		max:     maxTraces,
		traces:  make(map[TraceID]*traceEntry),
		alias:   make(map[string]TraceID),
		origins: make(map[originKey]origin),
	}
}

// Enabled reports whether spans are being recorded. The nil receiver —
// the disabled state — returns false, so call sites can skip attribute
// construction entirely.
func (t *Tracer) Enabled() bool { return t != nil }

// Mint allocates a fresh TraceID seeded from the first attempt's
// transaction ID and binds that TxID to it.
func (t *Tracer) Mint(txID string) TraceID {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	t.seq++
	id := TraceID(txID)
	if _, taken := t.traces[id]; taken || id == "" {
		// TxIDs are unique in practice; keep a deterministic fallback.
		id = TraceID(txID + "#dup")
	}
	t.ensureLocked(id)
	t.alias[txID] = id
	t.mu.Unlock()
	return id
}

// Bind associates a (possibly retried) attempt's TxID with an existing
// trace so lookups by any attempt's TxID resolve.
func (t *Tracer) Bind(txID string, id TraceID) {
	if t == nil || id == "" || txID == "" {
		return
	}
	t.mu.Lock()
	t.ensureLocked(id)
	t.alias[txID] = id
	t.mu.Unlock()
}

// Lookup resolves a transaction ID (any attempt) to its TraceID.
func (t *Tracer) Lookup(txID string) (TraceID, bool) {
	if t == nil {
		return "", false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.alias[txID]
	return id, ok
}

// Record appends one finished span. Attrs are alternating key/value
// pairs; an odd trailing key is dropped. Unknown TraceIDs open a new
// trace (a span can arrive before the minting layer's own spans).
func (t *Tracer) Record(id TraceID, name, node string, start, end time.Time, attrs ...string) {
	if t == nil || id == "" {
		return
	}
	var m map[string]string
	if len(attrs) >= 2 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	sp := Span{TraceID: id, Name: name, Node: node, Start: start, End: end, Attrs: m}
	t.mu.Lock()
	e := t.ensureLocked(id)
	if len(e.spans) >= maxSpansPerTrace {
		e.dropped++
	} else {
		e.spans = append(e.spans, sp)
	}
	t.mu.Unlock()
}

// Event records a point-in-time span (Start == End).
func (t *Tracer) Event(id TraceID, name, node string, at time.Time, attrs ...string) {
	t.Record(id, name, node, at, at, attrs...)
}

// ensureLocked returns the trace entry, creating (and evicting) as
// needed. Caller holds t.mu.
func (t *Tracer) ensureLocked(id TraceID) *traceEntry {
	if e, ok := t.traces[id]; ok {
		return e
	}
	if len(t.order) >= t.max {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.traces, oldest)
		// Drop aliases pointing at the evicted trace lazily: scanning the
		// alias map per eviction would be O(aliases); instead cap it.
		if len(t.alias) > 4*t.max {
			for k, v := range t.alias {
				if _, live := t.traces[v]; !live {
					delete(t.alias, k)
				}
			}
		}
	}
	e := &traceEntry{}
	t.traces[id] = e
	t.order = append(t.order, id)
	return e
}

// Spans returns a copy of the trace's spans sorted by start time.
func (t *Tracer) Spans(id TraceID) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	e, ok := t.traces[id]
	var out []Span
	if ok {
		out = append(out, e.spans...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs lists retained traces oldest first.
func (t *Tracer) TraceIDs() []TraceID {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]TraceID(nil), t.order...)
	t.mu.Unlock()
	return out
}

// Len reports how many traces are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// BlockOrigin notes how a block reached the trace peer (gossip push,
// anti-entropy, or direct deliver) so commit spans can carry the
// dissemination origin as attributes. First write wins: the trace
// peer's own ingest is recorded before any relayed duplicate.
func (t *Tracer) BlockOrigin(channel string, num uint64, source string, hops int) {
	if t == nil {
		return
	}
	t.originMu.Lock()
	k := originKey{channel, num}
	if _, ok := t.origins[k]; !ok {
		if len(t.origins) > 4*maxTracesDefault {
			// Bounded like traces; block numbers are monotone so a full
			// reset only loses attributes for in-flight commits.
			t.origins = make(map[originKey]origin)
		}
		t.origins[k] = origin{source: source, hops: hops}
	}
	t.originMu.Unlock()
}

// OriginOf reports a block's recorded dissemination origin.
func (t *Tracer) OriginOf(channel string, num uint64) (source string, hops int, ok bool) {
	if t == nil {
		return "", 0, false
	}
	t.originMu.Lock()
	o, ok := t.origins[originKey{channel, num}]
	t.originMu.Unlock()
	return o.source, o.hops, ok
}
