package statedb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"fabricsim/internal/types"
)

func v(b, t uint64) types.Version { return types.Version{BlockNum: b, TxNum: t} }

// withBackends runs fn once per registered backend; open builds a fresh
// store for that backend (file backends in a temp dir).
func withBackends(t *testing.T, fn func(t *testing.T, open func(t *testing.T) Store)) {
	for _, backend := range Backends() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			open := func(t *testing.T) Store {
				s, err := Open(backend, t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(s.Close)
				return s
			}
			fn(t, open)
		})
	}
}

func TestGetPutDelete(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		batch := NewUpdateBatch()
		batch.Put("cc", "k1", []byte("v1"), v(1, 0))
		batch.Put("cc", "k2", []byte("v2"), v(1, 1))
		if err := db.ApplyUpdates(batch, v(1, 2)); err != nil {
			t.Fatal(err)
		}

		vv, ok, err := db.Get("cc", "k1")
		if err != nil || !ok || string(vv.Value) != "v1" || vv.Version != v(1, 0) {
			t.Errorf("Get k1 = %+v ok=%v err=%v", vv, ok, err)
		}
		if _, ok, _ := db.Get("cc", "missing"); ok {
			t.Error("missing key found")
		}
		if _, ok, _ := db.Get("other", "k1"); ok {
			t.Error("namespace leak")
		}

		del := NewUpdateBatch()
		del.Delete("cc", "k1", v(2, 0))
		if err := db.ApplyUpdates(del, v(2, 1)); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := db.Get("cc", "k1"); ok {
			t.Error("deleted key still present")
		}
	})
}

func TestVersionTracking(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		b1 := NewUpdateBatch()
		b1.Put("cc", "k", []byte("a"), v(1, 0))
		_ = db.ApplyUpdates(b1, v(1, 1))
		b2 := NewUpdateBatch()
		b2.Put("cc", "k", []byte("b"), v(2, 3))
		_ = db.ApplyUpdates(b2, v(2, 4))

		ver, ok, err := db.Version("cc", "k")
		if err != nil || !ok || ver != v(2, 3) {
			t.Errorf("Version = %v ok=%v err=%v", ver, ok, err)
		}
	})
}

func TestMonotonicHeights(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		b := NewUpdateBatch()
		b.Put("cc", "k", []byte("a"), v(5, 0))
		if err := db.ApplyUpdates(b, v(5, 1)); err != nil {
			t.Fatal(err)
		}
		if err := db.ApplyUpdates(NewUpdateBatch(), v(5, 1)); err == nil {
			t.Error("replayed height accepted")
		}
		if err := db.ApplyUpdates(NewUpdateBatch(), v(4, 0)); err == nil {
			t.Error("regressing height accepted")
		}
		if db.Height() != v(5, 1) {
			t.Errorf("Height = %v", db.Height())
		}
	})
}

func TestGetRange(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		batch := NewUpdateBatch()
		for i := 0; i < 10; i++ {
			batch.Put("cc", fmt.Sprintf("key%02d", i), []byte{byte(i)}, v(1, uint64(i)))
		}
		_ = db.ApplyUpdates(batch, v(1, 10))

		kvs, err := db.GetRange("cc", "key03", "key07", 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != 4 {
			t.Fatalf("range returned %d keys", len(kvs))
		}
		for i, kv := range kvs {
			want := fmt.Sprintf("key%02d", i+3)
			if kv.Key != want {
				t.Errorf("kvs[%d].Key = %s, want %s", i, kv.Key, want)
			}
		}

		all, _ := db.GetRange("cc", "", "", 0)
		if len(all) != 10 {
			t.Errorf("open range returned %d", len(all))
		}
		limited, _ := db.GetRange("cc", "", "", 3)
		if len(limited) != 3 {
			t.Errorf("limited range returned %d", len(limited))
		}
	})
}

func TestBatchPutThenDeleteSameKey(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		batch := NewUpdateBatch()
		batch.Put("cc", "k", []byte("x"), v(1, 0))
		batch.Delete("cc", "k", v(1, 1))
		_ = db.ApplyUpdates(batch, v(1, 2))
		if _, ok, _ := db.Get("cc", "k"); ok {
			t.Error("delete after put in same batch did not win")
		}

		batch2 := NewUpdateBatch()
		batch2.Delete("cc", "j", v(2, 0))
		batch2.Put("cc", "j", []byte("y"), v(2, 1))
		_ = db.ApplyUpdates(batch2, v(2, 2))
		if _, ok, _ := db.Get("cc", "j"); !ok {
			t.Error("put after delete in same batch did not win")
		}
	})
}

func TestReturnedValueIsCopy(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		batch := NewUpdateBatch()
		batch.Put("cc", "k", []byte("abc"), v(1, 0))
		_ = db.ApplyUpdates(batch, v(1, 1))
		vv, _, _ := db.Get("cc", "k")
		vv.Value[0] = 'X'
		again, _, _ := db.Get("cc", "k")
		if string(again.Value) != "abc" {
			t.Error("mutation through returned slice leaked into the store")
		}
	})
}

func TestClosed(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		db.Close()
		if _, _, err := db.Get("cc", "k"); err != ErrClosed {
			t.Errorf("Get after close: %v", err)
		}
		if err := db.ApplyUpdates(NewUpdateBatch(), v(1, 0)); err != ErrClosed {
			t.Errorf("ApplyUpdates after close: %v", err)
		}
	})
}

// Property: after applying a batch, every put key returns its value and
// version, and every deleted key is absent.
func TestApplyUpdatesProperty(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		f := func(puts map[string][]byte, dels []string) bool {
			db := open(t)
			batch := NewUpdateBatch()
			i := uint64(0)
			for k, val := range puts {
				batch.Put("cc", k, val, v(1, i))
				i++
			}
			for _, k := range dels {
				if _, isPut := puts[k]; !isPut {
					batch.Delete("cc", k, v(1, i))
					i++
				}
			}
			if err := db.ApplyUpdates(batch, v(1, i+1)); err != nil {
				return false
			}
			for k, val := range puts {
				vv, ok, err := db.Get("cc", k)
				if err != nil || !ok || string(vv.Value) != string(val) {
					return false
				}
			}
			for _, k := range dels {
				if _, isPut := puts[k]; isPut {
					continue
				}
				if _, ok, _ := db.Get("cc", k); ok {
					return false
				}
			}
			return db.KeyCount("cc") == len(puts)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Error(err)
		}
	})
}

func TestNamespaces(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		b := NewUpdateBatch()
		b.Put("b-ns", "k", []byte("1"), v(1, 0))
		b.Put("a-ns", "k", []byte("2"), v(1, 1))
		_ = db.ApplyUpdates(b, v(1, 2))
		ns := db.Namespaces()
		if len(ns) != 2 || ns[0] != "a-ns" || ns[1] != "b-ns" {
			t.Errorf("Namespaces = %v", ns)
		}
	})
}

// TestGetVersionedZeroCopyView checks the split read API: GetVersioned
// returns a view aliasing the committed bytes (no per-read allocation),
// while Get keeps returning a private copy external callers may
// scribble on without corrupting committed state. Both backends must
// honor it — the file backend serves reads from its resident map.
func TestGetVersionedZeroCopyView(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		b := NewUpdateBatch()
		b.Put("cc", "k", []byte("value"), v(1, 0))
		if err := db.ApplyUpdates(b, v(1, 1)); err != nil {
			t.Fatal(err)
		}

		// Two views share one backing array: the read is zero-copy.
		v1, ok, err := db.GetVersioned("cc", "k")
		if err != nil || !ok {
			t.Fatalf("GetVersioned: ok=%v err=%v", ok, err)
		}
		v2, _, _ := db.GetVersioned("cc", "k")
		if &v1.Value[0] != &v2.Value[0] {
			t.Error("GetVersioned copied the value")
		}

		// Get returns a fresh copy every time; mutating it must not reach
		// committed state (or the view).
		g1, ok, err := db.Get("cc", "k")
		if err != nil || !ok {
			t.Fatalf("Get: ok=%v err=%v", ok, err)
		}
		if &g1.Value[0] == &v1.Value[0] {
			t.Fatal("Get aliases committed state")
		}
		g1.Value[0] = 'X'
		after, _, _ := db.Get("cc", "k")
		if string(after.Value) != "value" {
			t.Errorf("committed state mutated through Get copy: %q", after.Value)
		}
		if string(v1.Value) != "value" {
			t.Errorf("view mutated through Get copy: %q", v1.Value)
		}

		// A later commit of the same key replaces the entry; the old view
		// stays stable (ApplyUpdates copies on write, never in place).
		b2 := NewUpdateBatch()
		b2.Put("cc", "k", []byte("other"), v(2, 0))
		if err := db.ApplyUpdates(b2, v(2, 1)); err != nil {
			t.Fatal(err)
		}
		if string(v1.Value) != "value" {
			t.Errorf("old view changed by a later commit: %q", v1.Value)
		}
		// The batch's value buffer is also private to the DB.
		b3 := NewUpdateBatch()
		buf := []byte("third")
		b3.Put("cc", "k", buf, v(3, 0))
		if err := db.ApplyUpdates(b3, v(3, 1)); err != nil {
			t.Fatal(err)
		}
		buf[0] = 'Z'
		cur, _, _ := db.GetVersioned("cc", "k")
		if string(cur.Value) != "third" {
			t.Errorf("committed state aliases the batch buffer: %q", cur.Value)
		}

		// Missing keys and closed databases behave like Get.
		if _, ok, err := db.GetVersioned("cc", "absent"); ok || err != nil {
			t.Errorf("absent key: ok=%v err=%v", ok, err)
		}
		db.Close()
		if _, _, err := db.GetVersioned("cc", "k"); err == nil {
			t.Error("closed database served a view")
		}
	})
}

func TestRestore(t *testing.T) {
	withBackends(t, func(t *testing.T, open func(t *testing.T) Store) {
		db := open(t)
		b := NewUpdateBatch()
		b.Put("cc", "old", []byte("gone"), v(1, 0))
		_ = db.ApplyUpdates(b, v(1, 1))
		entries := []NSKV{
			{NS: "cc", KV: KV{Key: "a", VersionedValue: VersionedValue{Value: []byte("1"), Version: v(7, 0)}}},
			{NS: "dd", KV: KV{Key: "b", VersionedValue: VersionedValue{Value: []byte("2"), Version: v(7, 1)}}},
		}
		if err := db.Restore(entries, v(7, 2)); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := db.Get("cc", "old"); ok {
			t.Error("Restore kept pre-existing key")
		}
		vv, ok, _ := db.Get("dd", "b")
		if !ok || string(vv.Value) != "2" || vv.Version != v(7, 1) {
			t.Errorf("restored key = %+v ok=%v", vv, ok)
		}
		if db.Height() != v(7, 2) {
			t.Errorf("Height = %v", db.Height())
		}
	})
}

func TestHashEqualAcrossBackends(t *testing.T) {
	var hashes [][]byte
	for _, backend := range Backends() {
		db, err := Open(backend, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		b := NewUpdateBatch()
		b.Put("cc", "k1", []byte("v1"), v(1, 0))
		b.Put("aa", "k2", []byte("v2"), v(1, 1))
		_ = db.ApplyUpdates(b, v(1, 2))
		h, err := Hash(db)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
		db.Close()
	}
	for i := 1; i < len(hashes); i++ {
		if !bytes.Equal(hashes[0], hashes[i]) {
			t.Errorf("state hash differs between backends %q and %q", Backends()[0], Backends()[i])
		}
	}
}

// --- file-backend specifics ---

// TestFileReopenReplaysWAL: every acknowledged batch survives a close
// and reopen via the write-ahead log, without any explicit flush.
func TestFileReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		b := NewUpdateBatch()
		b.Put("cc", fmt.Sprintf("k%d", i), []byte{byte(i)}, v(i, 0))
		if i == 3 {
			b.Delete("cc", "k1", v(i, 1))
		}
		if err := db.ApplyUpdates(b, v(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := Hash(db)
	db.Close()

	r, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, _ := Hash(r)
	if !bytes.Equal(got, want) {
		t.Fatalf("state hash differs after reopen:\n%s", r.DumpString())
	}
	if _, ok, _ := r.Get("cc", "k1"); ok {
		t.Error("deleted key resurrected by WAL replay")
	}
	if r.Height() != v(5, 2) {
		t.Errorf("Height = %v", r.Height())
	}
}

// TestFileFlushFoldsWAL: Flush writes the sorted-run snapshot, empties
// the WAL, and later batches land in the fresh WAL.
func TestFileFlushFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte("x"), v(1, 0))
	_ = db.ApplyUpdates(b, v(1, 1))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || fi.Size() != 0 {
		t.Errorf("WAL not emptied by flush: %v size=%d", err, fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Errorf("snapshot missing after flush: %v", err)
	}
	b2 := NewUpdateBatch()
	b2.Put("cc", "k2", []byte("y"), v(2, 0))
	_ = db.ApplyUpdates(b2, v(2, 1))
	want, _ := Hash(db)
	db.Close()

	r, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, _ := Hash(r)
	if !bytes.Equal(got, want) {
		t.Error("snapshot+WAL reopen differs from pre-close state")
	}
}

// TestFileTornWALTruncated: a torn trailing record (crash mid-append)
// is dropped; every fully written batch survives.
func TestFileTornWALTruncated(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte("x"), v(1, 0))
	_ = db.ApplyUpdates(b, v(1, 1))
	db.Close()

	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A record claiming 200 payload bytes but holding 2.
	f.Write([]byte{200, 1, 0xde, 0xad})
	f.Close()

	r, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if vv, ok, _ := r.Get("cc", "k"); !ok || string(vv.Value) != "x" {
		t.Errorf("complete record lost: %+v ok=%v", vv, ok)
	}
	// The torn bytes were truncated, so appending keeps working.
	b2 := NewUpdateBatch()
	b2.Put("cc", "k2", []byte("y"), v(2, 0))
	if err := r.ApplyUpdates(b2, v(2, 1)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok, _ := r2.Get("cc", "k2"); !ok {
		t.Error("post-truncation append lost")
	}
}
