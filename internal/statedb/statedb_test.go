package statedb

import (
	"fmt"
	"testing"
	"testing/quick"

	"fabricsim/internal/types"
)

func v(b, t uint64) types.Version { return types.Version{BlockNum: b, TxNum: t} }

func TestGetPutDelete(t *testing.T) {
	db := New()
	batch := NewUpdateBatch()
	batch.Put("cc", "k1", []byte("v1"), v(1, 0))
	batch.Put("cc", "k2", []byte("v2"), v(1, 1))
	if err := db.ApplyUpdates(batch, v(1, 2)); err != nil {
		t.Fatal(err)
	}

	vv, ok, err := db.Get("cc", "k1")
	if err != nil || !ok || string(vv.Value) != "v1" || vv.Version != v(1, 0) {
		t.Errorf("Get k1 = %+v ok=%v err=%v", vv, ok, err)
	}
	if _, ok, _ := db.Get("cc", "missing"); ok {
		t.Error("missing key found")
	}
	if _, ok, _ := db.Get("other", "k1"); ok {
		t.Error("namespace leak")
	}

	del := NewUpdateBatch()
	del.Delete("cc", "k1", v(2, 0))
	if err := db.ApplyUpdates(del, v(2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get("cc", "k1"); ok {
		t.Error("deleted key still present")
	}
}

func TestVersionTracking(t *testing.T) {
	db := New()
	b1 := NewUpdateBatch()
	b1.Put("cc", "k", []byte("a"), v(1, 0))
	_ = db.ApplyUpdates(b1, v(1, 1))
	b2 := NewUpdateBatch()
	b2.Put("cc", "k", []byte("b"), v(2, 3))
	_ = db.ApplyUpdates(b2, v(2, 4))

	ver, ok, err := db.Version("cc", "k")
	if err != nil || !ok || ver != v(2, 3) {
		t.Errorf("Version = %v ok=%v err=%v", ver, ok, err)
	}
}

func TestMonotonicHeights(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte("a"), v(5, 0))
	if err := db.ApplyUpdates(b, v(5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyUpdates(NewUpdateBatch(), v(5, 1)); err == nil {
		t.Error("replayed height accepted")
	}
	if err := db.ApplyUpdates(NewUpdateBatch(), v(4, 0)); err == nil {
		t.Error("regressing height accepted")
	}
	if db.Height() != v(5, 1) {
		t.Errorf("Height = %v", db.Height())
	}
}

func TestGetRange(t *testing.T) {
	db := New()
	batch := NewUpdateBatch()
	for i := 0; i < 10; i++ {
		batch.Put("cc", fmt.Sprintf("key%02d", i), []byte{byte(i)}, v(1, uint64(i)))
	}
	_ = db.ApplyUpdates(batch, v(1, 10))

	kvs, err := db.GetRange("cc", "key03", "key07", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 4 {
		t.Fatalf("range returned %d keys", len(kvs))
	}
	for i, kv := range kvs {
		want := fmt.Sprintf("key%02d", i+3)
		if kv.Key != want {
			t.Errorf("kvs[%d].Key = %s, want %s", i, kv.Key, want)
		}
	}

	all, _ := db.GetRange("cc", "", "", 0)
	if len(all) != 10 {
		t.Errorf("open range returned %d", len(all))
	}
	limited, _ := db.GetRange("cc", "", "", 3)
	if len(limited) != 3 {
		t.Errorf("limited range returned %d", len(limited))
	}
}

func TestBatchPutThenDeleteSameKey(t *testing.T) {
	db := New()
	batch := NewUpdateBatch()
	batch.Put("cc", "k", []byte("x"), v(1, 0))
	batch.Delete("cc", "k", v(1, 1))
	_ = db.ApplyUpdates(batch, v(1, 2))
	if _, ok, _ := db.Get("cc", "k"); ok {
		t.Error("delete after put in same batch did not win")
	}

	batch2 := NewUpdateBatch()
	batch2.Delete("cc", "j", v(2, 0))
	batch2.Put("cc", "j", []byte("y"), v(2, 1))
	_ = db.ApplyUpdates(batch2, v(2, 2))
	if _, ok, _ := db.Get("cc", "j"); !ok {
		t.Error("put after delete in same batch did not win")
	}
}

func TestReturnedValueIsCopy(t *testing.T) {
	db := New()
	batch := NewUpdateBatch()
	batch.Put("cc", "k", []byte("abc"), v(1, 0))
	_ = db.ApplyUpdates(batch, v(1, 1))
	vv, _, _ := db.Get("cc", "k")
	vv.Value[0] = 'X'
	again, _, _ := db.Get("cc", "k")
	if string(again.Value) != "abc" {
		t.Error("mutation through returned slice leaked into the store")
	}
}

func TestClosed(t *testing.T) {
	db := New()
	db.Close()
	if _, _, err := db.Get("cc", "k"); err != ErrClosed {
		t.Errorf("Get after close: %v", err)
	}
	if err := db.ApplyUpdates(NewUpdateBatch(), v(1, 0)); err != ErrClosed {
		t.Errorf("ApplyUpdates after close: %v", err)
	}
}

// Property: after applying a batch, every put key returns its value and
// version, and every deleted key is absent.
func TestApplyUpdatesProperty(t *testing.T) {
	f := func(puts map[string][]byte, dels []string) bool {
		db := New()
		batch := NewUpdateBatch()
		i := uint64(0)
		for k, val := range puts {
			batch.Put("cc", k, val, v(1, i))
			i++
		}
		for _, k := range dels {
			if _, isPut := puts[k]; !isPut {
				batch.Delete("cc", k, v(1, i))
				i++
			}
		}
		if err := db.ApplyUpdates(batch, v(1, i+1)); err != nil {
			return false
		}
		for k, val := range puts {
			vv, ok, err := db.Get("cc", k)
			if err != nil || !ok || string(vv.Value) != string(val) {
				return false
			}
		}
		for _, k := range dels {
			if _, isPut := puts[k]; isPut {
				continue
			}
			if _, ok, _ := db.Get("cc", k); ok {
				return false
			}
		}
		return db.KeyCount("cc") == len(puts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNamespaces(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("b-ns", "k", []byte("1"), v(1, 0))
	b.Put("a-ns", "k", []byte("2"), v(1, 1))
	_ = db.ApplyUpdates(b, v(1, 2))
	ns := db.Namespaces()
	if len(ns) != 2 || ns[0] != "a-ns" || ns[1] != "b-ns" {
		t.Errorf("Namespaces = %v", ns)
	}
}

// TestGetVersionedZeroCopyView checks the split read API: GetVersioned
// returns a view aliasing the committed bytes (no per-read allocation),
// while Get keeps returning a private copy external callers may
// scribble on without corrupting committed state.
func TestGetVersionedZeroCopyView(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte("value"), v(1, 0))
	if err := db.ApplyUpdates(b, v(1, 1)); err != nil {
		t.Fatal(err)
	}

	// Two views share one backing array: the read is zero-copy.
	v1, ok, err := db.GetVersioned("cc", "k")
	if err != nil || !ok {
		t.Fatalf("GetVersioned: ok=%v err=%v", ok, err)
	}
	v2, _, _ := db.GetVersioned("cc", "k")
	if &v1.Value[0] != &v2.Value[0] {
		t.Error("GetVersioned copied the value")
	}

	// Get returns a fresh copy every time; mutating it must not reach
	// committed state (or the view).
	g1, ok, err := db.Get("cc", "k")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if &g1.Value[0] == &v1.Value[0] {
		t.Fatal("Get aliases committed state")
	}
	g1.Value[0] = 'X'
	after, _, _ := db.Get("cc", "k")
	if string(after.Value) != "value" {
		t.Errorf("committed state mutated through Get copy: %q", after.Value)
	}
	if string(v1.Value) != "value" {
		t.Errorf("view mutated through Get copy: %q", v1.Value)
	}

	// A later commit of the same key replaces the entry; the old view
	// stays stable (ApplyUpdates copies on write, never in place).
	b2 := NewUpdateBatch()
	b2.Put("cc", "k", []byte("other"), v(2, 0))
	if err := db.ApplyUpdates(b2, v(2, 1)); err != nil {
		t.Fatal(err)
	}
	if string(v1.Value) != "value" {
		t.Errorf("old view changed by a later commit: %q", v1.Value)
	}
	// The batch's value buffer is also private to the DB.
	b3 := NewUpdateBatch()
	buf := []byte("third")
	b3.Put("cc", "k", buf, v(3, 0))
	if err := db.ApplyUpdates(b3, v(3, 1)); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'Z'
	cur, _, _ := db.GetVersioned("cc", "k")
	if string(cur.Value) != "third" {
		t.Errorf("committed state aliases the batch buffer: %q", cur.Value)
	}

	// Missing keys and closed databases behave like Get.
	if _, ok, err := db.GetVersioned("cc", "absent"); ok || err != nil {
		t.Errorf("absent key: ok=%v err=%v", ok, err)
	}
	db.Close()
	if _, _, err := db.GetVersioned("cc", "k"); err == nil {
		t.Error("closed database served a view")
	}
}
