// Package statedb implements the versioned world-state database that
// backs each peer's ledger (the role LevelDB/CouchDB play in Fabric).
// Every key carries the Version (block, tx) of the transaction that
// last wrote it; MVCC validation in the validate phase compares a
// transaction's read-set versions against these committed versions.
package statedb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"fabricsim/internal/types"
)

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("statedb: closed")

// VersionedValue is a value with the version of its last write.
type VersionedValue struct {
	Value   []byte
	Version types.Version
}

// KV pairs a (namespace-local) key with its versioned value; returned by
// range scans.
type KV struct {
	Key string
	VersionedValue
}

// UpdateBatch accumulates the writes of one block's valid transactions,
// applied atomically at commit.
type UpdateBatch struct {
	updates map[string]map[string]*VersionedValue // ns -> key -> value (nil Value+IsDelete => delete)
	deletes map[string]map[string]types.Version   // ns -> key -> deleting version
}

// NewUpdateBatch returns an empty batch.
func NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{
		updates: make(map[string]map[string]*VersionedValue),
		deletes: make(map[string]map[string]types.Version),
	}
}

// Put records a write of key in namespace ns at version v.
func (b *UpdateBatch) Put(ns, key string, value []byte, v types.Version) {
	m, ok := b.updates[ns]
	if !ok {
		m = make(map[string]*VersionedValue)
		b.updates[ns] = m
	}
	m[key] = &VersionedValue{Value: value, Version: v}
	if dm, ok := b.deletes[ns]; ok {
		delete(dm, key)
	}
}

// Delete records a deletion of key in namespace ns at version v.
func (b *UpdateBatch) Delete(ns, key string, v types.Version) {
	dm, ok := b.deletes[ns]
	if !ok {
		dm = make(map[string]types.Version)
		b.deletes[ns] = dm
	}
	dm[key] = v
	if m, ok := b.updates[ns]; ok {
		delete(m, key)
	}
}

// Len returns the number of operations in the batch.
func (b *UpdateBatch) Len() int {
	n := 0
	for _, m := range b.updates {
		n += len(m)
	}
	for _, m := range b.deletes {
		n += len(m)
	}
	return n
}

// DB is an in-memory versioned key-value store, safe for concurrent use.
// Endorsement simulation reads run concurrently with block commits; a
// read-write mutex gives readers a consistent view of committed state.
type DB struct {
	mu     sync.RWMutex
	data   map[string]map[string]*VersionedValue // ns -> key -> value
	height types.Version
	closed bool
}

// New returns an empty database.
func New() *DB {
	return &DB{data: make(map[string]map[string]*VersionedValue)}
}

var _ Store = (*DB)(nil)

// Get returns the versioned value for (ns, key), or ok=false when the
// key is absent.
func (db *DB) Get(ns, key string) (VersionedValue, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return VersionedValue{}, false, ErrClosed
	}
	m, ok := db.data[ns]
	if !ok {
		return VersionedValue{}, false, nil
	}
	vv, ok := m[key]
	if !ok {
		return VersionedValue{}, false, nil
	}
	out := VersionedValue{Value: append([]byte(nil), vv.Value...), Version: vv.Version}
	return out, true, nil
}

// GetVersioned returns the versioned value for (ns, key) as a zero-copy
// read-only view: the returned Value aliases the database's committed
// bytes instead of copying them under the read lock the way Get does.
// The view is stable across later commits — ApplyUpdates copies
// incoming values and replaces whole entries, never mutating a stored
// slice in place — but callers MUST NOT modify it. It exists for the
// peer's internal hot paths (the chaincode simulator's reads during
// endorsement, MVCC checks); external callers keep the copying Get.
func (db *DB) GetVersioned(ns, key string) (VersionedValue, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return VersionedValue{}, false, ErrClosed
	}
	m, ok := db.data[ns]
	if !ok {
		return VersionedValue{}, false, nil
	}
	vv, ok := m[key]
	if !ok {
		return VersionedValue{}, false, nil
	}
	return VersionedValue{Value: vv.Value, Version: vv.Version}, true, nil
}

// Version returns the committed version of (ns, key); exists=false when
// the key has never been written or was deleted.
func (db *DB) Version(ns, key string) (types.Version, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return types.Version{}, false, ErrClosed
	}
	m, ok := db.data[ns]
	if !ok {
		return types.Version{}, false, nil
	}
	vv, ok := m[key]
	if !ok {
		return types.Version{}, false, nil
	}
	return vv.Version, true, nil
}

// GetRange returns committed pairs with startKey <= key < endKey in ns,
// in key order. An empty endKey means "to the end". limit <= 0 means no
// limit.
func (db *DB) GetRange(ns, startKey, endKey string, limit int) ([]KV, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	m, ok := db.data[ns]
	if !ok {
		return nil, nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		if k >= startKey && (endKey == "" || k < endKey) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]KV, 0, len(keys))
	for _, k := range keys {
		vv := m[k]
		out = append(out, KV{
			Key: k,
			VersionedValue: VersionedValue{
				Value:   append([]byte(nil), vv.Value...),
				Version: vv.Version,
			},
		})
	}
	return out, nil
}

// ApplyUpdates commits a batch at the given ledger height. Heights must
// be monotonically increasing; replays are rejected so a crashed peer
// cannot double-apply a block.
func (db *DB) ApplyUpdates(batch *UpdateBatch, height types.Version) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if height.Compare(db.height) <= 0 && (db.height != types.Version{}) {
		return fmt.Errorf("statedb: non-monotonic commit height %v after %v", height, db.height)
	}
	for ns, m := range batch.updates {
		target, ok := db.data[ns]
		if !ok {
			target = make(map[string]*VersionedValue, len(m))
			db.data[ns] = target
		}
		for k, vv := range m {
			target[k] = &VersionedValue{Value: append([]byte(nil), vv.Value...), Version: vv.Version}
		}
	}
	for ns, dm := range batch.deletes {
		target, ok := db.data[ns]
		if !ok {
			continue
		}
		for k := range dm {
			delete(target, k)
		}
	}
	db.height = height
	return nil
}

// Restore atomically replaces the database contents with the given
// entries at the given height — the snapshot-install path. Values are
// copied in, so the caller's slices stay private.
func (db *DB) Restore(entries []NSKV, height types.Version) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	data := make(map[string]map[string]*VersionedValue)
	for _, e := range entries {
		m, ok := data[e.NS]
		if !ok {
			m = make(map[string]*VersionedValue)
			data[e.NS] = m
		}
		m[e.Key] = &VersionedValue{Value: append([]byte(nil), e.Value...), Version: e.Version}
	}
	db.data = data
	db.height = height
	return nil
}

// Height returns the version of the last applied update batch.
func (db *DB) Height() types.Version {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.height
}

// KeyCount returns the number of live keys in a namespace.
func (db *DB) KeyCount(ns string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data[ns])
}

// Namespaces returns the sorted namespaces present in the database.
func (db *DB) Namespaces() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.data))
	for ns := range db.data {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Close marks the database closed; subsequent operations fail.
func (db *DB) Close() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = true
}

// DumpString renders the database contents for debugging, one line per
// key, sorted.
func (db *DB) DumpString() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sb strings.Builder
	for _, ns := range db.namespacesLocked() {
		m := db.data[ns]
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s/%s @%s = %q\n", ns, k, m[k].Version, m[k].Value)
		}
	}
	return sb.String()
}

func (db *DB) namespacesLocked() []string {
	out := make([]string, 0, len(db.data))
	for ns := range db.data {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}
