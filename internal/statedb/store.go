package statedb

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"fabricsim/internal/types"
)

// Store is the interface every world-state backend implements. The
// in-memory DB is the reference implementation ("mem"); FileDB adds a
// write-ahead-logged, file-backed backend ("file"). All backends share
// the same semantics:
//
//   - versioned reads: every key carries the Version of its last write,
//     and MVCC validation compares read-set versions against it;
//   - GetVersioned returns a zero-copy read-only view that stays stable
//     across later commits (backends replace entries, never mutate a
//     stored value slice in place);
//   - ApplyUpdates applies one block's batch atomically at a strictly
//     increasing height, so a crashed peer cannot double-apply a block.
type Store interface {
	// Get returns a private copy of the versioned value for (ns, key).
	Get(ns, key string) (VersionedValue, bool, error)
	// GetVersioned returns a zero-copy read-only view of (ns, key);
	// callers MUST NOT modify the returned Value.
	GetVersioned(ns, key string) (VersionedValue, bool, error)
	// Version returns the committed version of (ns, key).
	Version(ns, key string) (types.Version, bool, error)
	// GetRange returns committed pairs with startKey <= key < endKey.
	GetRange(ns, startKey, endKey string, limit int) ([]KV, error)
	// ApplyUpdates commits a batch atomically at the given height.
	ApplyUpdates(batch *UpdateBatch, height types.Version) error
	// Restore atomically replaces the entire contents with the given
	// entries at the given height — the snapshot-install path. Unlike
	// ApplyUpdates it may move the height backwards (a fresh store
	// bootstrapping from a remote snapshot has height zero anyway).
	Restore(entries []NSKV, height types.Version) error
	// Height returns the version of the last applied update batch.
	Height() types.Version
	// KeyCount returns the number of live keys in a namespace.
	KeyCount(ns string) int
	// Namespaces returns the sorted namespaces present.
	Namespaces() []string
	// Close releases the backend; subsequent operations fail.
	Close()
	// DumpString renders the contents for debugging, sorted.
	DumpString() string
}

// Flusher is implemented by backends that stage durability in a
// write-ahead log: Flush folds the log into a compact sorted-run
// snapshot file (the ledger checkpointer calls it).
type Flusher interface {
	Flush() error
}

// NSKV is a namespace-qualified versioned pair — the unit snapshots and
// restores move around.
type NSKV struct {
	NS string
	KV
}

// Opener builds a Store rooted at dir (ignored by memory backends).
type Opener func(dir string) (Store, error)

var (
	backendMu sync.RWMutex
	backends  = map[string]Opener{
		"mem":  func(string) (Store, error) { return New(), nil },
		"file": func(dir string) (Store, error) { return OpenFile(dir) },
	}
)

// RegisterBackend adds a named state backend to the registry (tests and
// alternate engines). Re-registering a name replaces it.
func RegisterBackend(name string, open Opener) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backends[name] = open
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open builds the named backend ("" means "mem") rooted at dir.
func Open(backend, dir string) (Store, error) {
	if backend == "" {
		backend = "mem"
	}
	backendMu.RLock()
	open, ok := backends[backend]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("statedb: unknown backend %q (have %v)", backend, Backends())
	}
	return open(dir)
}

// Export returns the full contents of a store as sorted entries —
// namespaces ascending, keys ascending within each — the deterministic
// order snapshots and state hashes are computed over.
func Export(s Store) ([]NSKV, error) {
	var out []NSKV
	for _, ns := range s.Namespaces() {
		kvs, err := s.GetRange(ns, "", "", 0)
		if err != nil {
			return nil, err
		}
		for _, kv := range kvs {
			out = append(out, NSKV{NS: ns, KV: kv})
		}
	}
	return out, nil
}

// Hash returns the SHA-256 state hash: a digest over the sorted
// (ns, key, value, version) entries plus the store height. Two stores
// with identical committed contents hash identically regardless of
// backend — the cross-backend convergence check.
func Hash(s Store) ([]byte, error) {
	entries, err := Export(s)
	if err != nil {
		return nil, err
	}
	return HashEntries(entries, s.Height()), nil
}

// HashEntries computes the state hash over already-exported entries
// (which must be in Export order) at the given height. Checkpoints and
// snapshots use it to verify serialized state without a live store.
func HashEntries(entries []NSKV, height types.Version) []byte {
	h := sha256.New()
	enc := types.NewEncoder(64)
	enc.Uvarint(height.BlockNum)
	enc.Uvarint(height.TxNum)
	h.Write(enc.Bytes())
	for _, e := range entries {
		enc := types.NewEncoder(len(e.NS) + len(e.Key) + len(e.Value) + 24)
		enc.String(e.NS)
		enc.String(e.Key)
		enc.Bytes2(e.Value)
		enc.Uvarint(e.Version.BlockNum)
		enc.Uvarint(e.Version.TxNum)
		h.Write(enc.Bytes())
	}
	return h.Sum(nil)
}

// MarshalEntries encodes snapshot entries with a leading count; the
// shared wire form of state contents in checkpoints and snapshots.
func MarshalEntries(entries []NSKV) []byte {
	size := 16
	for _, e := range entries {
		size += len(e.NS) + len(e.Key) + len(e.Value) + 24
	}
	enc := types.NewEncoder(size)
	enc.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		enc.String(e.NS)
		enc.String(e.Key)
		enc.Bytes2(e.Value)
		enc.Uvarint(e.Version.BlockNum)
		enc.Uvarint(e.Version.TxNum)
	}
	return enc.Bytes()
}

// UnmarshalEntries decodes MarshalEntries output from the decoder's
// current position.
func UnmarshalEntries(dec *types.Decoder) ([]NSKV, error) {
	n := dec.Uvarint()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	entries := make([]NSKV, 0, min(int(n), 1<<20))
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		var e NSKV
		e.NS = dec.String()
		e.Key = dec.String()
		e.Value = dec.Bytes2()
		e.Version.BlockNum = dec.Uvarint()
		e.Version.TxNum = dec.Uvarint()
		entries = append(entries, e)
	}
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	return entries, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
