package statedb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"fabricsim/internal/types"
)

// File layout of the "file" state backend, rooted at its directory:
//
//	state.snap  — sorted-run snapshot: full contents at some height
//	wal.log     — write-ahead log of every ApplyUpdates batch since
//
// ApplyUpdates appends the batch to the WAL before touching the resident
// map, so a crash never loses an acknowledged commit; reopening loads the
// snapshot and replays the WAL tail. Flush folds the WAL into a fresh
// snapshot (called by the ledger checkpointer and after flushEvery
// batches). A torn trailing WAL record — a crash mid-append — is detected
// by its length prefix and truncated away on open.
const (
	walFileName  = "wal.log"
	snapFileName = "state.snap"
	// flushEvery bounds WAL growth between ledger checkpoints.
	flushEvery = 512
)

var snapMagic = []byte("SDBSNAP1")

// FileDB is the write-ahead-logged, file-backed state backend. Reads are
// served from a resident in-memory DB (preserving the mem backend's MVCC
// and zero-copy GetVersioned semantics exactly); writes are logged to
// disk first.
type FileDB struct {
	mu         sync.Mutex // serializes writers: WAL append + apply + flush
	mem        *DB
	dir        string
	wal        *os.File
	walRecords int
}

var _ Store = (*FileDB)(nil)
var _ Flusher = (*FileDB)(nil)

// OpenFile opens (or creates) a file-backed state store rooted at dir.
func OpenFile(dir string) (*FileDB, error) {
	if dir == "" {
		return nil, errors.New("statedb: file backend requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statedb: create dir: %w", err)
	}
	f := &FileDB{mem: New(), dir: dir}
	if err := f.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := f.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(f.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("statedb: open wal: %w", err)
	}
	f.wal = wal
	return f, nil
}

func (f *FileDB) walPath() string  { return filepath.Join(f.dir, walFileName) }
func (f *FileDB) snapPath() string { return filepath.Join(f.dir, snapFileName) }

func (f *FileDB) loadSnapshot() error {
	buf, err := os.ReadFile(f.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("statedb: read snapshot: %w", err)
	}
	if !bytes.HasPrefix(buf, snapMagic) {
		return fmt.Errorf("statedb: %s: bad magic", f.snapPath())
	}
	dec := types.NewDecoder(buf[len(snapMagic):])
	var height types.Version
	height.BlockNum = dec.Uvarint()
	height.TxNum = dec.Uvarint()
	entries, err := UnmarshalEntries(dec)
	if err != nil {
		return fmt.Errorf("statedb: decode snapshot: %w", err)
	}
	if err := dec.Finish(); err != nil {
		return fmt.Errorf("statedb: decode snapshot: %w", err)
	}
	return f.mem.Restore(entries, height)
}

// replayWAL applies every complete record past the snapshot height and
// truncates a torn tail left by a crash mid-append.
func (f *FileDB) replayWAL() error {
	buf, err := os.ReadFile(f.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("statedb: read wal: %w", err)
	}
	off := 0
	for off < len(buf) {
		n, sz := binary.Uvarint(buf[off:])
		if sz <= 0 || uint64(len(buf)-off-sz) < n {
			break // torn tail: crash mid-append
		}
		batch, height, derr := unmarshalWALRecord(buf[off+sz : off+sz+int(n)])
		if derr != nil {
			break // corrupt tail record, same treatment
		}
		// Records at or below the snapshot height are leftovers from a
		// crash between snapshot write and WAL truncate; skip them.
		if cur := f.mem.Height(); height.Compare(cur) > 0 || cur == (types.Version{}) {
			if err := f.mem.ApplyUpdates(batch, height); err != nil {
				return fmt.Errorf("statedb: replay wal: %w", err)
			}
		}
		off += sz + int(n)
		f.walRecords++
	}
	if off < len(buf) {
		if err := os.Truncate(f.walPath(), int64(off)); err != nil {
			return fmt.Errorf("statedb: truncate torn wal: %w", err)
		}
	}
	return nil
}

// Get returns a private copy of the versioned value for (ns, key).
func (f *FileDB) Get(ns, key string) (VersionedValue, bool, error) {
	return f.mem.Get(ns, key)
}

// GetVersioned returns a zero-copy read-only view of (ns, key).
func (f *FileDB) GetVersioned(ns, key string) (VersionedValue, bool, error) {
	return f.mem.GetVersioned(ns, key)
}

// Version returns the committed version of (ns, key).
func (f *FileDB) Version(ns, key string) (types.Version, bool, error) {
	return f.mem.Version(ns, key)
}

// GetRange returns committed pairs with startKey <= key < endKey.
func (f *FileDB) GetRange(ns, startKey, endKey string, limit int) ([]KV, error) {
	return f.mem.GetRange(ns, startKey, endKey, limit)
}

// ApplyUpdates logs the batch to the WAL, then applies it to the
// resident map. The write is acknowledged only after it is on disk.
func (f *FileDB) ApplyUpdates(batch *UpdateBatch, height types.Version) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur := f.mem.Height(); height.Compare(cur) <= 0 && cur != (types.Version{}) {
		return fmt.Errorf("statedb: non-monotonic commit height %v after %v", height, cur)
	}
	if f.wal == nil {
		return ErrClosed
	}
	payload := marshalWALRecord(batch, height)
	enc := types.NewEncoder(len(payload) + 10)
	enc.Bytes2(payload)
	if _, err := f.wal.Write(enc.Bytes()); err != nil {
		return fmt.Errorf("statedb: wal append: %w", err)
	}
	if err := f.mem.ApplyUpdates(batch, height); err != nil {
		return err
	}
	f.walRecords++
	if f.walRecords >= flushEvery {
		return f.flushLocked()
	}
	return nil
}

// Restore atomically replaces the contents with a snapshot's entries and
// immediately persists them as the new on-disk snapshot.
func (f *FileDB) Restore(entries []NSKV, height types.Version) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wal == nil {
		return ErrClosed
	}
	if err := f.mem.Restore(entries, height); err != nil {
		return err
	}
	return f.flushLocked()
}

// Flush folds the WAL into a fresh sorted-run snapshot file.
func (f *FileDB) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wal == nil {
		return ErrClosed
	}
	return f.flushLocked()
}

func (f *FileDB) flushLocked() error {
	entries, err := Export(f.mem)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].NS != entries[j].NS {
			return entries[i].NS < entries[j].NS
		}
		return entries[i].Key < entries[j].Key
	})
	height := f.mem.Height()
	enc := types.NewEncoder(len(snapMagic) + 20)
	enc.Uvarint(height.BlockNum)
	enc.Uvarint(height.TxNum)
	body := append(append(append([]byte(nil), snapMagic...), enc.Bytes()...), MarshalEntries(entries)...)
	tmp := f.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return fmt.Errorf("statedb: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, f.snapPath()); err != nil {
		return fmt.Errorf("statedb: install snapshot: %w", err)
	}
	// The snapshot now covers everything in the WAL; start it over.
	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("statedb: truncate wal: %w", err)
	}
	if _, err := f.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("statedb: rewind wal: %w", err)
	}
	f.walRecords = 0
	return nil
}

// Height returns the version of the last applied update batch.
func (f *FileDB) Height() types.Version { return f.mem.Height() }

// KeyCount returns the number of live keys in a namespace.
func (f *FileDB) KeyCount(ns string) int { return f.mem.KeyCount(ns) }

// Namespaces returns the sorted namespaces present.
func (f *FileDB) Namespaces() []string { return f.mem.Namespaces() }

// Close releases file handles; subsequent operations fail. The WAL
// already holds every acknowledged write, so nothing needs flushing.
func (f *FileDB) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mem.Close()
	if f.wal != nil {
		f.wal.Close()
		f.wal = nil
	}
}

// DumpString renders the contents for debugging, sorted.
func (f *FileDB) DumpString() string { return f.mem.DumpString() }

// marshalWALRecord encodes (batch, height) deterministically: height,
// then sorted puts, then sorted deletes.
func marshalWALRecord(batch *UpdateBatch, height types.Version) []byte {
	enc := types.NewEncoder(256)
	enc.Uvarint(height.BlockNum)
	enc.Uvarint(height.TxNum)
	nss := make([]string, 0, len(batch.updates))
	for ns := range batch.updates {
		nss = append(nss, ns)
	}
	sort.Strings(nss)
	var nPuts uint64
	for _, ns := range nss {
		nPuts += uint64(len(batch.updates[ns]))
	}
	enc.Uvarint(nPuts)
	for _, ns := range nss {
		m := batch.updates[ns]
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			vv := m[k]
			enc.String(ns)
			enc.String(k)
			enc.Bytes2(vv.Value)
			enc.Uvarint(vv.Version.BlockNum)
			enc.Uvarint(vv.Version.TxNum)
		}
	}
	dss := make([]string, 0, len(batch.deletes))
	for ns := range batch.deletes {
		dss = append(dss, ns)
	}
	sort.Strings(dss)
	var nDels uint64
	for _, ns := range dss {
		nDels += uint64(len(batch.deletes[ns]))
	}
	enc.Uvarint(nDels)
	for _, ns := range dss {
		dm := batch.deletes[ns]
		keys := make([]string, 0, len(dm))
		for k := range dm {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := dm[k]
			enc.String(ns)
			enc.String(k)
			enc.Uvarint(v.BlockNum)
			enc.Uvarint(v.TxNum)
		}
	}
	return enc.Bytes()
}

func unmarshalWALRecord(payload []byte) (*UpdateBatch, types.Version, error) {
	dec := types.NewDecoder(payload)
	var height types.Version
	height.BlockNum = dec.Uvarint()
	height.TxNum = dec.Uvarint()
	batch := NewUpdateBatch()
	nPuts := dec.Uvarint()
	for i := uint64(0); i < nPuts && dec.Err() == nil; i++ {
		ns := dec.String()
		key := dec.String()
		val := dec.Bytes2()
		var v types.Version
		v.BlockNum = dec.Uvarint()
		v.TxNum = dec.Uvarint()
		batch.Put(ns, key, val, v)
	}
	nDels := dec.Uvarint()
	for i := uint64(0); i < nDels && dec.Err() == nil; i++ {
		ns := dec.String()
		key := dec.String()
		var v types.Version
		v.BlockNum = dec.Uvarint()
		v.TxNum = dec.Uvarint()
		batch.Delete(ns, key, v)
	}
	if err := dec.Finish(); err != nil {
		return nil, types.Version{}, err
	}
	return batch, height, nil
}
