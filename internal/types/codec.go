// Package types defines the wire- and ledger-level data model of the
// Fabric reproduction: proposals, endorsements, transactions, read-write
// sets, and blocks, together with a deterministic binary codec.
//
// Hyperledger Fabric serializes these structures with protobuf; this
// reproduction uses a hand-rolled deterministic encoding (stdlib only)
// so that hashes over encoded bytes are stable across processes.
package types

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec errors.
var (
	// ErrShortBuffer is returned when a decode runs past the end of input.
	ErrShortBuffer = errors.New("types: short buffer")
	// ErrOversize is returned when a length prefix exceeds sane limits.
	ErrOversize = errors.New("types: oversized field")
)

// maxFieldLen bounds any single length-prefixed field to guard against
// corrupt or adversarial inputs blowing up allocations.
const maxFieldLen = 1 << 28 // 256 MiB

// Encoder accumulates a deterministic binary encoding. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes accumulated so far. The returned slice
// aliases the encoder's internal buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Uint64 appends a fixed-width big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a fixed-width big-endian int64.
func (e *Encoder) Int64(v int64) {
	e.Uint64(uint64(v))
}

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
		return
	}
	e.buf = append(e.buf, 0)
}

// Byte appends a raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bytes2 appends a length-prefixed byte slice.
func (e *Encoder) Bytes2(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Float64 appends a fixed-width IEEE-754 float.
func (e *Encoder) Float64(f float64) {
	e.Uint64(math.Float64bits(f))
}

// Decoder consumes a deterministic binary encoding produced by Encoder.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for decoding. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Err returns the first error encountered while decoding, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error if decoding failed or trailing bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("types: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrShortBuffer)
		return 0
	}
	d.off += n
	return v
}

// Uint64 reads a fixed-width big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Int64 reads a fixed-width big-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool reads a single 0/1 byte.
func (d *Decoder) Bool() bool {
	return d.Byte() != 0
}

// Byte reads a raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 1 {
		d.fail(ErrShortBuffer)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bytes2 reads a length-prefixed byte slice. The result is a copy.
func (d *Decoder) Bytes2() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxFieldLen {
		d.fail(ErrOversize)
		return nil
	}
	if uint64(d.Remaining()) < n {
		d.fail(ErrShortBuffer)
		return nil
	}
	if n == 0 {
		return nil // nil is the canonical empty slice
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	return string(d.Bytes2())
}

// Float64 reads a fixed-width IEEE-754 float.
func (d *Decoder) Float64() float64 {
	return math.Float64frombits(d.Uint64())
}
