package types

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBlockHashChain(t *testing.T) {
	genesis := NewBlock(0, nil, nil)
	b1 := NewBlock(1, genesis.Header.Hash(), [][]byte{[]byte("tx1"), []byte("tx2")})
	b2 := NewBlock(2, b1.Header.Hash(), [][]byte{[]byte("tx3")})

	if !bytes.Equal(b1.Header.PrevHash, genesis.Header.Hash()) {
		t.Error("b1 not chained to genesis")
	}
	if !bytes.Equal(b2.Header.PrevHash, b1.Header.Hash()) {
		t.Error("b2 not chained to b1")
	}
	if err := b1.VerifyDataHash(); err != nil {
		t.Errorf("VerifyDataHash: %v", err)
	}
}

func TestBlockTamperDetection(t *testing.T) {
	b := NewBlock(1, []byte("prev"), [][]byte{[]byte("tx1"), []byte("tx2")})
	b.Data[0] = []byte("tampered")
	if err := b.VerifyDataHash(); err == nil {
		t.Error("tampered data not detected")
	}
}

func TestBlockHeaderHashSensitivity(t *testing.T) {
	h1 := BlockHeader{Number: 1, PrevHash: []byte("p"), DataHash: []byte("d")}
	h2 := h1
	h2.Number = 2
	if bytes.Equal(h1.Hash(), h2.Hash()) {
		t.Error("different headers hash equal")
	}
}

func TestComputeDataHashUnambiguous(t *testing.T) {
	// ["ab","c"] must hash differently from ["a","bc"]: length prefixes
	// prevent concatenation ambiguity.
	a := ComputeDataHash([][]byte{[]byte("ab"), []byte("c")})
	b := ComputeDataHash([][]byte{[]byte("a"), []byte("bc")})
	if bytes.Equal(a, b) {
		t.Error("data hash ambiguous under re-chunking")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	b := NewBlock(7, []byte("prevhash"), [][]byte{[]byte("tx1"), []byte("tx2")})
	b.Metadata.ValidationFlags = []ValidationCode{ValidationValid, ValidationMVCCConflict}
	b.Metadata.OrderedTime = 999
	b.Metadata.OrdererID = "osn1"
	got, err := UnmarshalBlock(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	f := func(num uint64, prev []byte, payloads [][]byte) bool {
		b := NewBlock(num, prev, payloads)
		got, err := UnmarshalBlock(b.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Marshal(), b.Marshal()) && got.VerifyDataHash() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockTransactionsDecode(t *testing.T) {
	tx := &Transaction{Proposal: *sampleProposal(), Results: sampleRWSet()}
	b := NewBlock(1, nil, [][]byte{tx.Marshal(), tx.Marshal()})
	txs, err := b.Transactions()
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 || txs[0].ID() != tx.ID() {
		t.Errorf("decoded %d txs", len(txs))
	}

	bad := NewBlock(2, nil, [][]byte{[]byte("garbage")})
	if _, err := bad.Transactions(); err == nil {
		t.Error("garbage payload decoded")
	}
}

func TestBlockSizePositive(t *testing.T) {
	b := NewBlock(1, []byte("p"), [][]byte{make([]byte, 1000)})
	if b.Size() < 1000 {
		t.Errorf("Size() = %d, want >= payload size", b.Size())
	}
}
