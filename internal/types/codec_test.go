package types

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	enc := NewEncoder(64)
	enc.Uvarint(42)
	enc.Uint64(1 << 60)
	enc.Int64(-17)
	enc.Bool(true)
	enc.Bool(false)
	enc.Byte(0xAB)
	enc.Bytes2([]byte("hello"))
	enc.String("world")
	enc.Float64(math.Pi)

	dec := NewDecoder(enc.Bytes())
	if got := dec.Uvarint(); got != 42 {
		t.Errorf("Uvarint = %d, want 42", got)
	}
	if got := dec.Uint64(); got != 1<<60 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := dec.Int64(); got != -17 {
		t.Errorf("Int64 = %d, want -17", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Error("Bool values wrong")
	}
	if got := dec.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if got := dec.Bytes2(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes2 = %q", got)
	}
	if got := dec.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := dec.Float64(); got != math.Pi {
		t.Errorf("Float64 = %v", got)
	}
	if err := dec.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	enc := NewEncoder(16)
	enc.Bytes2([]byte("abcdef"))
	full := enc.Bytes()
	for cut := 0; cut < len(full); cut++ {
		dec := NewDecoder(full[:cut])
		dec.Bytes2()
		if dec.Err() == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	enc := NewEncoder(8)
	enc.Uvarint(7)
	buf := append(enc.Bytes(), 0x01)
	dec := NewDecoder(buf)
	dec.Uvarint()
	if err := dec.Finish(); err == nil {
		t.Error("trailing byte not detected")
	}
}

func TestDecoderOversizeGuard(t *testing.T) {
	enc := NewEncoder(16)
	enc.Uvarint(uint64(maxFieldLen) + 1)
	dec := NewDecoder(enc.Bytes())
	if dec.Bytes2() != nil || dec.Err() == nil {
		t.Error("oversized length not rejected")
	}
}

func TestUvarintRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		enc := NewEncoder(10)
		enc.Uvarint(v)
		dec := NewDecoder(enc.Bytes())
		return dec.Uvarint() == v && dec.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesStringRoundTripProperty(t *testing.T) {
	f := func(b []byte, s string) bool {
		enc := NewEncoder(len(b) + len(s) + 16)
		enc.Bytes2(b)
		enc.String(s)
		dec := NewDecoder(enc.Bytes())
		gb := dec.Bytes2()
		gs := dec.String()
		return bytes.Equal(gb, b) && gs == s && dec.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
