package types

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleProposal() *Proposal {
	return &Proposal{
		TxID:        "tx-1",
		ChannelID:   "perf",
		ChaincodeID: "bench",
		Fn:          "write",
		Args:        [][]byte{[]byte("k"), []byte("v")},
		Creator:     []byte("cert-bytes"),
		Nonce:       []byte("nonce-1"),
		Timestamp:   123456789,
		TraceID:     "trace-1",
	}
}

func sampleRWSet() RWSet {
	return RWSet{
		Reads: []KVRead{
			{Key: "a", Version: Version{BlockNum: 3, TxNum: 1}, Exists: true},
			{Key: "b", Exists: false},
		},
		Writes: []KVWrite{
			{Key: "a", Value: []byte("v1")},
			{Key: "c", IsDelete: true},
		},
	}
}

func TestProposalRoundTrip(t *testing.T) {
	p := sampleProposal()
	got, err := UnmarshalProposal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestProposalHashDeterministic(t *testing.T) {
	p1 := sampleProposal()
	p2 := sampleProposal()
	if !bytes.Equal(p1.Hash(), p2.Hash()) {
		t.Error("equal proposals hash differently")
	}
	p2.Fn = "read"
	if bytes.Equal(p1.Hash(), p2.Hash()) {
		t.Error("different proposals hash equal")
	}
}

func TestComputeTxIDUnique(t *testing.T) {
	a := ComputeTxID([]byte("n1"), []byte("c"))
	b := ComputeTxID([]byte("n2"), []byte("c"))
	c := ComputeTxID([]byte("n1"), []byte("d"))
	if a == b || a == c {
		t.Error("tx ids collide for distinct inputs")
	}
	if a != ComputeTxID([]byte("n1"), []byte("c")) {
		t.Error("tx id not deterministic")
	}
}

func TestRWSetRoundTrip(t *testing.T) {
	rw := sampleRWSet()
	got, err := UnmarshalRWSet(rw.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&rw, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, &rw)
	}
}

func TestRWSetRoundTripProperty(t *testing.T) {
	f := func(keys []string, vals [][]byte, blockNums []uint64) bool {
		var rw RWSet
		for i, k := range keys {
			v := Version{}
			if i < len(blockNums) {
				v.BlockNum = blockNums[i]
			}
			rw.Reads = append(rw.Reads, KVRead{Key: k, Version: v, Exists: i%2 == 0})
		}
		for i, v := range vals {
			rw.Writes = append(rw.Writes, KVWrite{Key: string(rune('a' + i%26)), Value: v, IsDelete: i%3 == 0})
		}
		got, err := UnmarshalRWSet(rw.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Marshal(), rw.Marshal())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProposalResponseRoundTrip(t *testing.T) {
	rw := sampleRWSet()
	pr := &ProposalResponse{
		TxID:        "tx-9",
		Status:      200,
		Message:     "",
		ResultsHash: []byte{1, 2, 3},
		Results:     &rw,
		Payload:     []byte("OK"),
		Endorsement: Endorsement{EndorserID: "Org1.peer0", EndorserOrg: "Org1", Signature: []byte("sig")},
	}
	got, err := UnmarshalProposalResponse(pr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, pr)
	}
}

func TestProposalResponseNilResults(t *testing.T) {
	pr := &ProposalResponse{TxID: "t", Status: 500, Message: "boom"}
	got, err := UnmarshalProposalResponse(pr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Results != nil || got.Message != "boom" {
		t.Errorf("got %+v", got)
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := &Transaction{
		Proposal: *sampleProposal(),
		Results:  sampleRWSet(),
		Endorsements: []Endorsement{
			{EndorserID: "Org1.peer0", EndorserOrg: "Org1", Signature: []byte("s1")},
			{EndorserID: "Org2.peer0", EndorserOrg: "Org2", Signature: []byte("s2")},
		},
		ClientSig:  []byte("csig"),
		SubmitTime: 42,
		Padding:    make([]byte, 100),
	}
	got, err := UnmarshalTransaction(tx.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tx, got) {
		t.Errorf("round trip mismatch")
	}
	if got.ID() != tx.Proposal.TxID {
		t.Errorf("ID() = %s", got.ID())
	}
}

// TestPeekEnvelopeInfoTraceID pins the prefix property the orderer
// relies on: the TraceID appended at the end of the Proposal encoding
// must survive a marshaled-Transaction peek, with and without tracing.
func TestPeekEnvelopeInfoTraceID(t *testing.T) {
	for _, traceID := range []string{"trace-xyz", ""} {
		tx := &Transaction{
			Proposal:   *sampleProposal(),
			Results:    sampleRWSet(),
			ClientSig:  []byte("csig"),
			SubmitTime: 42,
		}
		tx.Proposal.TraceID = traceID
		info, err := PeekEnvelopeInfo(tx.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if info.TxID != tx.Proposal.TxID || info.TraceID != traceID {
			t.Errorf("peek = {TxID:%s TraceID:%q}, want {%s %q}",
				info.TxID, info.TraceID, tx.Proposal.TxID, traceID)
		}
		if !reflect.DeepEqual(info.Results, tx.Results) {
			t.Errorf("peeked rwset mismatch")
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {0xFF}, bytes.Repeat([]byte{0xFF}, 64)} {
		if _, err := UnmarshalTransaction(b); err == nil {
			t.Errorf("garbage %x decoded as transaction", b)
		}
	}
}

func TestValidationCodeString(t *testing.T) {
	cases := map[ValidationCode]string{
		ValidationValid:                    "VALID",
		ValidationMVCCConflict:             "MVCC_READ_CONFLICT",
		ValidationEndorsementPolicyFailure: "ENDORSEMENT_POLICY_FAILURE",
		ValidationDuplicateTxID:            "DUPLICATE_TXID",
	}
	for code, want := range cases {
		if code.String() != want {
			t.Errorf("%d.String() = %s, want %s", code, code, want)
		}
	}
	if !ValidationValid.Valid() || ValidationMVCCConflict.Valid() {
		t.Error("Valid() wrong")
	}
}

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b Version
		want int
	}{
		{Version{1, 1}, Version{1, 1}, 0},
		{Version{1, 1}, Version{1, 2}, -1},
		{Version{2, 0}, Version{1, 9}, 1},
		{Version{0, 5}, Version{1, 0}, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("compare not antisymmetric for %v,%v", c.a, c.b)
		}
	}
}
