package types

import (
	"bytes"
	"crypto/sha256"
	"fmt"
)

// BlockHeader chains a block to its predecessor. DataHash commits to the
// ordered transaction payloads; PrevHash is the SHA-256 of the previous
// header's encoding, making the ledger tamper-evident.
type BlockHeader struct {
	Number   uint64
	PrevHash []byte
	DataHash []byte
}

// Marshal returns the deterministic encoding of the header.
func (h *BlockHeader) Marshal() []byte {
	enc := NewEncoder(80)
	enc.Uvarint(h.Number)
	enc.Bytes2(h.PrevHash)
	enc.Bytes2(h.DataHash)
	return enc.Bytes()
}

// Hash returns the SHA-256 digest of the encoded header — the value the
// next block records as PrevHash.
func (h *BlockHeader) Hash() []byte {
	sum := sha256.Sum256(h.Marshal())
	return sum[:]
}

// BlockMetadata carries per-transaction validation flags, written by the
// committing peer after the validate phase, plus ordering timestamps
// used to compute the paper's "block time" metric (Definition 4.3).
type BlockMetadata struct {
	ValidationFlags []ValidationCode
	// OrderedTime is the unix-nano timestamp at which the ordering
	// service cut this block.
	OrderedTime int64
	// OrdererID names the ordering-service node that cut the block.
	OrdererID string
	// ChannelID names the channel whose chain this block extends. Each
	// channel numbers its blocks independently, so peers route delivered
	// blocks to the matching per-channel commit pipeline by this field.
	// Empty means the node's default (first configured) channel.
	ChannelID string
	// Reordered marks a block whose transactions went through the
	// conflict-aware cutter: survivors are in dependency order (every
	// intra-block read precedes the writes it conflicts with) and any
	// early-aborted transactions sit at the tail. Committers may then
	// fan MVCC validation out across true dependency chains instead of
	// coarse key-overlap groups.
	Reordered bool
	// EarlyAborted is the count of trailing transactions the cutter
	// aborted (unresolvable read-write cycles). Committers flag them
	// EARLY_ABORT_CONFLICT without spending validate CPU on them.
	EarlyAborted int
}

// Block is the unit the ordering service emits and peers validate and
// commit. Data holds encoded Transaction envelopes in consensus order.
type Block struct {
	Header   BlockHeader
	Data     [][]byte
	Metadata BlockMetadata
}

// ComputeDataHash hashes the concatenation of length-prefixed payloads.
func ComputeDataHash(data [][]byte) []byte {
	h := sha256.New()
	var lenBuf [10]byte
	for _, d := range data {
		enc := NewEncoder(10)
		enc.Uvarint(uint64(len(d)))
		n := copy(lenBuf[:], enc.Bytes())
		h.Write(lenBuf[:n])
		h.Write(d)
	}
	return h.Sum(nil)
}

// NewBlock assembles a block over the given encoded transactions,
// chaining it to prevHash.
func NewBlock(number uint64, prevHash []byte, data [][]byte) *Block {
	return &Block{
		Header: BlockHeader{
			Number:   number,
			PrevHash: prevHash,
			DataHash: ComputeDataHash(data),
		},
		Data: data,
		Metadata: BlockMetadata{
			ValidationFlags: make([]ValidationCode, len(data)),
		},
	}
}

// VerifyDataHash checks that Data matches the header's DataHash.
func (b *Block) VerifyDataHash() error {
	if got := ComputeDataHash(b.Data); !bytes.Equal(got, b.Header.DataHash) {
		return fmt.Errorf("block %d: data hash mismatch", b.Header.Number)
	}
	return nil
}

// Transactions decodes every envelope in the block. A decoding failure
// on any transaction aborts with an error; the committer treats that as
// a BAD_PAYLOAD block.
func (b *Block) Transactions() ([]*Transaction, error) {
	txs := make([]*Transaction, 0, len(b.Data))
	for i, d := range b.Data {
		tx, err := UnmarshalTransaction(d)
		if err != nil {
			return nil, fmt.Errorf("block %d tx %d: %w", b.Header.Number, i, err)
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// Marshal returns the deterministic encoding of the whole block.
func (b *Block) Marshal() []byte {
	size := 128
	for _, d := range b.Data {
		size += len(d) + 8
	}
	enc := NewEncoder(size)
	enc.Uvarint(b.Header.Number)
	enc.Bytes2(b.Header.PrevHash)
	enc.Bytes2(b.Header.DataHash)
	enc.Uvarint(uint64(len(b.Data)))
	for _, d := range b.Data {
		enc.Bytes2(d)
	}
	enc.Uvarint(uint64(len(b.Metadata.ValidationFlags)))
	for _, f := range b.Metadata.ValidationFlags {
		enc.Byte(byte(f))
	}
	enc.Int64(b.Metadata.OrderedTime)
	enc.String(b.Metadata.OrdererID)
	enc.String(b.Metadata.ChannelID)
	enc.Bool(b.Metadata.Reordered)
	enc.Uvarint(uint64(b.Metadata.EarlyAborted))
	return enc.Bytes()
}

// UnmarshalBlock decodes a block produced by Marshal.
func UnmarshalBlock(buf []byte) (*Block, error) {
	dec := NewDecoder(buf)
	var b Block
	b.Header.Number = dec.Uvarint()
	b.Header.PrevHash = dec.Bytes2()
	b.Header.DataHash = dec.Bytes2()
	n := dec.Uvarint()
	if n > maxFieldLen {
		return nil, ErrOversize
	}
	b.Data = make([][]byte, 0, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		b.Data = append(b.Data, dec.Bytes2())
	}
	nf := dec.Uvarint()
	if nf > maxFieldLen {
		return nil, ErrOversize
	}
	b.Metadata.ValidationFlags = make([]ValidationCode, 0, nf)
	for i := uint64(0); i < nf && dec.Err() == nil; i++ {
		b.Metadata.ValidationFlags = append(b.Metadata.ValidationFlags, ValidationCode(dec.Byte()))
	}
	b.Metadata.OrderedTime = dec.Int64()
	b.Metadata.OrdererID = dec.String()
	b.Metadata.ChannelID = dec.String()
	b.Metadata.Reordered = dec.Bool()
	ea := dec.Uvarint()
	if ea > maxFieldLen {
		return nil, ErrOversize
	}
	b.Metadata.EarlyAborted = int(ea)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("unmarshal block: %w", err)
	}
	return &b, nil
}

// Size returns the encoded size of the block in bytes, used by the
// transport bandwidth model.
func (b *Block) Size() int {
	size := 64 + len(b.Header.PrevHash) + len(b.Header.DataHash) + len(b.Metadata.ValidationFlags)
	for _, d := range b.Data {
		size += len(d) + 4
	}
	return size
}
