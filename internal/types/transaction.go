package types

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// TxID uniquely identifies a transaction. Fabric derives it from the
// client nonce and creator identity; this reproduction does the same.
type TxID string

// ValidationCode is the outcome the committer assigns to each
// transaction in a block. Both valid and invalid transactions are
// recorded in the chain; only valid writes reach the world state.
type ValidationCode uint8

// Validation codes, mirroring the subset of Fabric's peer.TxValidationCode
// this reproduction can produce.
const (
	// ValidationPending marks a transaction not yet validated.
	ValidationPending ValidationCode = iota
	// ValidationValid marks a fully valid transaction.
	ValidationValid
	// ValidationEndorsementPolicyFailure marks a VSCC rejection.
	ValidationEndorsementPolicyFailure
	// ValidationMVCCConflict marks a read-set version conflict.
	ValidationMVCCConflict
	// ValidationBadSignature marks an invalid creator or endorser signature.
	ValidationBadSignature
	// ValidationDuplicateTxID marks a replayed transaction ID.
	ValidationDuplicateTxID
	// ValidationBadPayload marks a structurally invalid envelope.
	ValidationBadPayload
	// ValidationEarlyAbort marks a transaction dropped by the ordering
	// service's conflict-aware cutter (Fabric++-style early abort): its
	// reads were doomed by earlier writes in the same block and no
	// reordering could save it, so it never reaches validate CPU.
	ValidationEarlyAbort
)

// String returns the Fabric-style name of the code.
func (c ValidationCode) String() string {
	switch c {
	case ValidationPending:
		return "PENDING"
	case ValidationValid:
		return "VALID"
	case ValidationEndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case ValidationMVCCConflict:
		return "MVCC_READ_CONFLICT"
	case ValidationBadSignature:
		return "BAD_SIGNATURE"
	case ValidationDuplicateTxID:
		return "DUPLICATE_TXID"
	case ValidationBadPayload:
		return "BAD_PAYLOAD"
	case ValidationEarlyAbort:
		return "EARLY_ABORT_CONFLICT"
	default:
		return fmt.Sprintf("ValidationCode(%d)", uint8(c))
	}
}

// Valid reports whether the code denotes a committed, state-changing tx.
func (c ValidationCode) Valid() bool { return c == ValidationValid }

// Proposal is a signed chaincode-invocation request prepared by a client
// and sent to endorsing peers in the execute phase.
type Proposal struct {
	TxID        TxID
	ChannelID   string
	ChaincodeID string
	Fn          string
	Args        [][]byte
	Creator     []byte // serialized client identity
	Nonce       []byte
	Timestamp   int64 // unix nanoseconds at the client
	// TraceID carries the gateway-minted trace identifier through the
	// envelope so every layer can attribute spans to one logical
	// submission. Empty when tracing is disabled (the default); retried
	// attempts reuse the first attempt's TraceID.
	TraceID string
}

// ComputeTxID derives the transaction ID the way Fabric does: a hash of
// the client nonce concatenated with the creator identity.
func ComputeTxID(nonce, creator []byte) TxID {
	h := sha256.New()
	h.Write(nonce)
	h.Write(creator)
	return TxID(hex.EncodeToString(h.Sum(nil)))
}

func (p *Proposal) encode(enc *Encoder) {
	enc.String(string(p.TxID))
	enc.String(p.ChannelID)
	enc.String(p.ChaincodeID)
	enc.String(p.Fn)
	enc.Uvarint(uint64(len(p.Args)))
	for _, a := range p.Args {
		enc.Bytes2(a)
	}
	enc.Bytes2(p.Creator)
	enc.Bytes2(p.Nonce)
	enc.Int64(p.Timestamp)
	// TraceID stays last so Proposal remains an encoding prefix of
	// Transaction for PeekEnvelopeInfo.
	enc.String(p.TraceID)
}

func (p *Proposal) decode(dec *Decoder) {
	p.TxID = TxID(dec.String())
	p.ChannelID = dec.String()
	p.ChaincodeID = dec.String()
	p.Fn = dec.String()
	n := dec.Uvarint()
	if n > maxFieldLen {
		dec.fail(ErrOversize)
		return
	}
	p.Args = make([][]byte, 0, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		p.Args = append(p.Args, dec.Bytes2())
	}
	p.Creator = dec.Bytes2()
	p.Nonce = dec.Bytes2()
	p.Timestamp = dec.Int64()
	p.TraceID = dec.String()
}

// Marshal returns the deterministic encoding of the proposal.
func (p *Proposal) Marshal() []byte {
	enc := NewEncoder(256)
	p.encode(enc)
	return enc.Bytes()
}

// UnmarshalProposal decodes a proposal produced by Marshal.
func UnmarshalProposal(b []byte) (*Proposal, error) {
	dec := NewDecoder(b)
	var p Proposal
	p.decode(dec)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("unmarshal proposal: %w", err)
	}
	return &p, nil
}

// Hash returns the SHA-256 digest of the encoded proposal. Endorsers
// sign over this digest together with the response payload.
func (p *Proposal) Hash() []byte {
	sum := sha256.Sum256(p.Marshal())
	return sum[:]
}

// Endorsement is one endorsing peer's signed approval of a proposal
// response (the ESCC output).
type Endorsement struct {
	EndorserID  string // MSP-qualified identity, e.g. "Org1.peer0"
	EndorserOrg string
	Signature   []byte // over proposal hash || response payload
}

func (en *Endorsement) encode(enc *Encoder) {
	enc.String(en.EndorserID)
	enc.String(en.EndorserOrg)
	enc.Bytes2(en.Signature)
}

func (en *Endorsement) decode(dec *Decoder) {
	en.EndorserID = dec.String()
	en.EndorserOrg = dec.String()
	en.Signature = dec.Bytes2()
}

// ProposalResponse is what an endorsing peer returns to the client:
// the simulated read-write set plus the peer's endorsement.
type ProposalResponse struct {
	TxID        TxID
	Status      int32 // 200 on success
	Message     string
	ResultsHash []byte // SHA-256 of the encoded RWSet
	Results     *RWSet
	Payload     []byte // chaincode response payload
	Endorsement Endorsement
}

// OK reports whether the endorsement succeeded.
func (pr *ProposalResponse) OK() bool { return pr.Status == 200 }

// Marshal returns the deterministic encoding of the response.
func (pr *ProposalResponse) Marshal() []byte {
	enc := NewEncoder(256)
	enc.String(string(pr.TxID))
	enc.Uvarint(uint64(uint32(pr.Status)))
	enc.String(pr.Message)
	enc.Bytes2(pr.ResultsHash)
	hasResults := pr.Results != nil
	enc.Bool(hasResults)
	if hasResults {
		pr.Results.encode(enc)
	}
	enc.Bytes2(pr.Payload)
	pr.Endorsement.encode(enc)
	return enc.Bytes()
}

// UnmarshalProposalResponse decodes a response produced by Marshal.
func UnmarshalProposalResponse(b []byte) (*ProposalResponse, error) {
	dec := NewDecoder(b)
	var pr ProposalResponse
	pr.TxID = TxID(dec.String())
	pr.Status = int32(uint32(dec.Uvarint()))
	pr.Message = dec.String()
	pr.ResultsHash = dec.Bytes2()
	if dec.Bool() {
		pr.Results = &RWSet{}
		pr.Results.decode(dec)
	}
	pr.Payload = dec.Bytes2()
	pr.Endorsement.decode(dec)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("unmarshal proposal response: %w", err)
	}
	return &pr, nil
}

// Transaction is the envelope a client broadcasts to the ordering
// service after collecting endorsements: the original proposal, the
// agreed read-write set, and the endorsements that back it.
type Transaction struct {
	Proposal     Proposal
	Results      RWSet
	Endorsements []Endorsement
	ClientSig    []byte // client signature over proposal hash || results
	SubmitTime   int64  // unix nanos when the client broadcast the envelope
	Padding      []byte // models the paper's transaction-size parameter
}

func (t *Transaction) encode(enc *Encoder) {
	t.Proposal.encode(enc)
	t.Results.encode(enc)
	enc.Uvarint(uint64(len(t.Endorsements)))
	for i := range t.Endorsements {
		t.Endorsements[i].encode(enc)
	}
	enc.Bytes2(t.ClientSig)
	enc.Int64(t.SubmitTime)
	enc.Bytes2(t.Padding)
}

func (t *Transaction) decode(dec *Decoder) {
	t.Proposal.decode(dec)
	t.Results.decode(dec)
	n := dec.Uvarint()
	if n > maxFieldLen {
		dec.fail(ErrOversize)
		return
	}
	t.Endorsements = make([]Endorsement, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		t.Endorsements[i].decode(dec)
	}
	t.ClientSig = dec.Bytes2()
	t.SubmitTime = dec.Int64()
	t.Padding = dec.Bytes2()
}

// Marshal returns the deterministic encoding of the transaction.
func (t *Transaction) Marshal() []byte {
	enc := NewEncoder(512 + len(t.Padding))
	t.encode(enc)
	return enc.Bytes()
}

// UnmarshalTransaction decodes a transaction produced by Marshal.
func UnmarshalTransaction(b []byte) (*Transaction, error) {
	dec := NewDecoder(b)
	var t Transaction
	t.decode(dec)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("unmarshal transaction: %w", err)
	}
	return &t, nil
}

// EnvelopeInfo is the prefix of a marshaled Transaction that the
// ordering path needs for conflict analysis: the transaction identity,
// the chaincode namespace, and the endorsed read-write set. Peeking
// this prefix costs one partial decode instead of a full envelope
// unmarshal (endorsements, signatures, and padding are skipped).
type EnvelopeInfo struct {
	TxID        TxID
	ChaincodeID string
	TraceID     string
	Results     RWSet
}

// PeekEnvelopeInfo decodes just the proposal and read-write set from a
// marshaled Transaction envelope. The encoding places them first
// precisely so the ordering service can see endorsed rwsets without
// paying for (or trusting) the rest of the envelope.
func PeekEnvelopeInfo(b []byte) (*EnvelopeInfo, error) {
	dec := NewDecoder(b)
	var p Proposal
	p.decode(dec)
	var rw RWSet
	rw.decode(dec)
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("peek envelope: %w", err)
	}
	return &EnvelopeInfo{TxID: p.TxID, ChaincodeID: p.ChaincodeID, TraceID: p.TraceID, Results: rw}, nil
}

// ID returns the transaction's ID.
func (t *Transaction) ID() TxID { return t.Proposal.TxID }

// SubmittedAt returns SubmitTime as a time.Time.
func (t *Transaction) SubmittedAt() time.Time { return time.Unix(0, t.SubmitTime) }
