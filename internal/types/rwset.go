package types

import "fmt"

// Version identifies the ledger height at which a key was last written:
// the committing block number and the transaction's position inside it.
// Fabric's MVCC validation compares the version recorded in a
// transaction's read set against the version currently committed.
type Version struct {
	BlockNum uint64
	TxNum    uint64
}

// Compare orders versions lexicographically by (BlockNum, TxNum) and
// returns -1, 0, or +1.
func (v Version) Compare(o Version) int {
	switch {
	case v.BlockNum < o.BlockNum:
		return -1
	case v.BlockNum > o.BlockNum:
		return 1
	case v.TxNum < o.TxNum:
		return -1
	case v.TxNum > o.TxNum:
		return 1
	default:
		return 0
	}
}

// String renders the version as "blockNum:txNum".
func (v Version) String() string {
	return fmt.Sprintf("%d:%d", v.BlockNum, v.TxNum)
}

// KVRead records that a transaction read key at the given committed
// version. Exists is false when the key was absent at simulation time.
type KVRead struct {
	Key     string
	Version Version
	Exists  bool
}

// KVWrite records a write (or delete) performed by a transaction.
type KVWrite struct {
	Key      string
	Value    []byte
	IsDelete bool
}

// RWSet is the read-write set produced by simulating a chaincode
// invocation during the execute phase and validated during the validate
// phase (MVCC). Reads and Writes are kept in the order the chaincode
// issued them; the codec preserves that order so the set hashes
// deterministically.
type RWSet struct {
	Reads  []KVRead
	Writes []KVWrite
}

// Empty reports whether the set contains no reads and no writes.
func (rw *RWSet) Empty() bool {
	return len(rw.Reads) == 0 && len(rw.Writes) == 0
}

// encode appends the set to enc.
func (rw *RWSet) encode(enc *Encoder) {
	enc.Uvarint(uint64(len(rw.Reads)))
	for _, r := range rw.Reads {
		enc.String(r.Key)
		enc.Uvarint(r.Version.BlockNum)
		enc.Uvarint(r.Version.TxNum)
		enc.Bool(r.Exists)
	}
	enc.Uvarint(uint64(len(rw.Writes)))
	for _, w := range rw.Writes {
		enc.String(w.Key)
		enc.Bytes2(w.Value)
		enc.Bool(w.IsDelete)
	}
}

// decode reads the set from dec.
func (rw *RWSet) decode(dec *Decoder) {
	nr := dec.Uvarint()
	if nr > maxFieldLen {
		dec.fail(ErrOversize)
		return
	}
	rw.Reads = make([]KVRead, 0, nr)
	for i := uint64(0); i < nr && dec.Err() == nil; i++ {
		var r KVRead
		r.Key = dec.String()
		r.Version.BlockNum = dec.Uvarint()
		r.Version.TxNum = dec.Uvarint()
		r.Exists = dec.Bool()
		rw.Reads = append(rw.Reads, r)
	}
	nw := dec.Uvarint()
	if nw > maxFieldLen {
		dec.fail(ErrOversize)
		return
	}
	rw.Writes = make([]KVWrite, 0, nw)
	for i := uint64(0); i < nw && dec.Err() == nil; i++ {
		var w KVWrite
		w.Key = dec.String()
		w.Value = dec.Bytes2()
		w.IsDelete = dec.Bool()
		rw.Writes = append(rw.Writes, w)
	}
}

// Marshal returns the deterministic binary encoding of the set.
func (rw *RWSet) Marshal() []byte {
	enc := NewEncoder(64 + 32*len(rw.Reads) + 64*len(rw.Writes))
	rw.encode(enc)
	return enc.Bytes()
}

// UnmarshalRWSet decodes a set previously produced by Marshal.
func UnmarshalRWSet(b []byte) (*RWSet, error) {
	dec := NewDecoder(b)
	var rw RWSet
	rw.decode(dec)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("unmarshal rwset: %w", err)
	}
	return &rw, nil
}
